"""VaultServer, workload generator, and access-pattern auditor tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.deploy import (
    QueryBudgetExceeded,
    SecureInferenceSession,
    VaultServer,
    zipf_workload,
)
from repro.graph import make_sbm_graph
from repro.tee import AccessPatternAuditor


@pytest.fixture
def server(trained_vault):
    run = trained_vault
    session = SecureInferenceSession(
        run.backbone,
        run.rectifiers["series"],
        run.substitute,
        run.graph.adjacency,
    )
    return VaultServer(session, run.graph.features), run


class TestVaultServer:
    def test_single_query_matches_full_pass(self, server):
        vault_server, run = server
        session = SecureInferenceSession(
            run.backbone, run.rectifiers["series"], run.substitute,
            run.graph.adjacency,
        )
        full, _ = session.predict(run.graph.features)
        assert vault_server.query(11) == full[11]

    def test_batch_query(self, server):
        vault_server, run = server
        labels = vault_server.query_batch([1, 2, 3])
        assert labels.shape == (3,)

    def test_empty_batch_rejected(self, server):
        vault_server, _ = server
        with pytest.raises(ValueError):
            vault_server.query_batch([])

    def test_stats_accumulate(self, server):
        vault_server, _ = server
        vault_server.query(0)
        vault_server.query_batch([1, 2])
        stats = vault_server.stats
        assert stats.queries_served == 3
        assert stats.total_seconds > 0
        assert stats.total_payload_bytes > 0
        assert stats.per_node_counts == {0: 1, 1: 1, 2: 1}

    def test_mean_latency(self, server):
        vault_server, _ = server
        assert vault_server.stats.mean_latency_seconds == 0.0
        vault_server.query(4)
        assert vault_server.stats.mean_latency_seconds > 0

    def test_latency_summary_empty_is_zeros_not_nan(self):
        """Regression: before the first query the percentile digest used to
        come back NaN, which poisons dashboards and JSON consumers."""
        import math

        from repro.deploy.server import ServerStats

        summary = ServerStats().latency_summary()
        assert set(summary) >= {"p50", "p95", "p99"}
        for key, value in summary.items():
            assert not math.isnan(value), f"{key} is NaN on an empty histogram"
            assert value == 0.0

    def test_latency_summary_populated_after_queries(self, server):
        vault_server, _ = server
        vault_server.query(2)
        summary = vault_server.stats.latency_summary()
        assert summary["count"] == 1.0
        assert summary["p50"] > 0.0

    def test_hottest_nodes(self, server):
        vault_server, _ = server
        for _ in range(3):
            vault_server.query(7)
        vault_server.query(8)
        assert vault_server.stats.hottest_nodes(top=1) == [7]

    def test_hottest_nodes_tie_break_is_deterministic(self):
        from repro.deploy.profiler import InferenceProfile
        from repro.deploy.server import ServerStats

        stats = ServerStats()
        profile = InferenceProfile(0.0, 0.0, 0.0, 0.0, 0, 0)
        # insertion order deliberately adversarial: ties must rank by id
        stats.record_batch([9, 3, 5], profile)
        stats.record_batch([3], profile)
        assert stats.hottest_nodes(top=3) == [3, 5, 9]
        assert stats.hottest_nodes(top=10) == [3, 5, 9]

    def test_query_budget_enforced(self, trained_vault):
        run = trained_vault
        session = SecureInferenceSession(
            run.backbone, run.rectifiers["series"], run.substitute,
            run.graph.adjacency,
        )
        vault_server = VaultServer(session, run.graph.features, query_budget=2)
        vault_server.query(0)
        vault_server.query(1)
        with pytest.raises(QueryBudgetExceeded):
            vault_server.query(2)

    def test_invalid_budget(self, trained_vault):
        run = trained_vault
        session = SecureInferenceSession(
            run.backbone, run.rectifiers["series"], run.substitute,
            run.graph.adjacency,
        )
        with pytest.raises(ValueError):
            VaultServer(session, run.graph.features, query_budget=0)

    def test_serve_workload(self, server):
        vault_server, run = server
        workload = [0, 1, 2, 3, 4, 5]
        labels = vault_server.serve(workload, batch_size=2)
        assert labels.shape == (6,)
        assert vault_server.stats.queries_served == 6

    def test_serve_empty_workload(self, server):
        vault_server, _ = server
        assert vault_server.serve([], batch_size=3).size == 0

    def test_serve_invalid_batch_size(self, server):
        vault_server, _ = server
        with pytest.raises(ValueError):
            vault_server.serve([1], batch_size=0)


class TestZipfWorkload:
    def test_shape_and_range(self):
        workload = zipf_workload(100, 500, seed=0)
        assert workload.shape == (500,)
        assert workload.min() >= 0 and workload.max() < 100

    def test_heavy_tail(self):
        workload = zipf_workload(1000, 5000, alpha=1.2, seed=1)
        counts = np.bincount(workload, minlength=1000)
        top_share = np.sort(counts)[::-1][:10].sum() / 5000
        assert top_share > 0.5  # top-10 nodes dominate

    def test_deterministic(self):
        a = zipf_workload(50, 100, seed=3)
        b = zipf_workload(50, 100, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_workload(0, 10)
        with pytest.raises(ValueError):
            zipf_workload(10, -1)
        with pytest.raises(ValueError):
            zipf_workload(10, 10, alpha=1.0)


class TestAccessPatternAuditor:
    @pytest.fixture
    def graph(self):
        return make_sbm_graph(40, 2, 16, 4.0, homophily=0.8, seed=2)

    def test_full_graph_ecalls_leak_nothing(self, graph):
        auditor = AccessPatternAuditor(graph.num_nodes)
        for target in range(5):
            auditor.observe_full_graph_ecall([target])
        report = auditor.leakage_report(graph.adjacency)
        assert not report.leaks
        assert report.num_candidates == 0

    def test_node_ecalls_reveal_neighbourhood(self, graph):
        auditor = AccessPatternAuditor(graph.num_nodes)
        auditor.observe_node_ecall(graph.adjacency, [0], hops=1)
        report = auditor.leakage_report(graph.adjacency)
        # 1-hop access pattern is exactly the target's neighbour set.
        degree = int(graph.adjacency.degrees()[0])
        assert report.leaks or degree == 0
        if degree:
            assert report.num_recovered == degree

    def test_recall_grows_with_observations(self, graph):
        few = AccessPatternAuditor(graph.num_nodes)
        many = AccessPatternAuditor(graph.num_nodes)
        for target in range(3):
            few.observe_node_ecall(graph.adjacency, [target], hops=1)
        for target in range(30):
            many.observe_node_ecall(graph.adjacency, [target], hops=1)
        assert (
            many.leakage_report(graph.adjacency).recall
            >= few.leakage_report(graph.adjacency).recall
        )

    def test_multi_hop_lowers_precision(self, graph):
        """2-hop access patterns include non-neighbours → noisier signal."""
        one_hop = AccessPatternAuditor(graph.num_nodes)
        two_hop = AccessPatternAuditor(graph.num_nodes)
        for target in range(10):
            one_hop.observe_node_ecall(graph.adjacency, [target], hops=1)
            two_hop.observe_node_ecall(graph.adjacency, [target], hops=2)
        p1 = one_hop.leakage_report(graph.adjacency).precision
        p2 = two_hop.leakage_report(graph.adjacency).precision
        assert p2 <= p1 + 1e-9

    def test_summary_text(self, graph):
        auditor = AccessPatternAuditor(graph.num_nodes)
        auditor.observe_node_ecall(graph.adjacency, [0], hops=1)
        text = auditor.leakage_report(graph.adjacency).summary()
        assert "observations" in text and "recovered" in text

    def test_invalid_num_nodes(self):
        with pytest.raises(ValueError):
            AccessPatternAuditor(0)
