"""Sealed storage + attestation tests: identity binding, tamper detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AttestationError, SealingError
from repro.tee import (
    SealedBlob,
    derive_seal_key,
    generate_quote,
    measure_code,
    seal,
    unseal,
    verify_quote,
)


class TestMeasurement:
    def test_deterministic(self):
        desc = {"scheme": "parallel", "dims": [16, 8]}
        assert measure_code(desc) == measure_code(desc)

    def test_order_independent(self):
        assert measure_code({"a": 1, "b": 2}) == measure_code({"b": 2, "a": 1})

    def test_differs_by_content(self):
        assert measure_code({"a": 1}) != measure_code({"a": 2})


class TestSealUnseal:
    def test_roundtrip(self):
        payload = {"weights": np.arange(10).tolist(), "arch": "parallel"}
        blob = seal(payload, "enclave-x")
        assert unseal(blob, "enclave-x") == payload

    def test_roundtrip_numpy(self):
        payload = np.random.default_rng(0).random((5, 3))
        blob = seal(payload, "m")
        np.testing.assert_array_equal(unseal(blob, "m"), payload)

    def test_identity_mismatch_rejected(self):
        blob = seal("secret", "enclave-a")
        with pytest.raises(SealingError):
            unseal(blob, "enclave-b")

    def test_tampered_ciphertext_rejected(self):
        blob = seal("secret", "m")
        flipped = bytes([blob.ciphertext[0] ^ 0xFF]) + blob.ciphertext[1:]
        tampered = SealedBlob(blob.measurement, blob.nonce, flipped, blob.mac)
        with pytest.raises(SealingError):
            unseal(tampered, "m")

    def test_tampered_mac_rejected(self):
        blob = seal("secret", "m")
        bad_mac = bytes([blob.mac[0] ^ 0x01]) + blob.mac[1:]
        tampered = SealedBlob(blob.measurement, blob.nonce, blob.ciphertext, bad_mac)
        with pytest.raises(SealingError):
            unseal(tampered, "m")

    def test_device_secret_binds(self):
        blob = seal("secret", "m", device_secret=b"device-1")
        with pytest.raises(SealingError):
            unseal(blob, "m", device_secret=b"device-2")

    def test_ciphertext_hides_plaintext(self):
        blob = seal("A" * 100, "m")
        assert b"AAAA" not in blob.ciphertext

    def test_blob_size(self):
        blob = seal("x", "m")
        assert blob.num_bytes == len(blob.ciphertext) + len(blob.nonce) + len(blob.mac)

    def test_key_derivation_depends_on_measurement(self):
        assert derive_seal_key("a") != derive_seal_key("b")


class TestSnapshotVersionSkew:
    """Recovery snapshots under version skew (the supervisor's failure mode).

    A sealed snapshot is bound to the enclave measurement that wrote it; a
    rebuilt enclave whose code (scheme, layer shapes) changed derives a
    different seal key and must fail *closed* — the supervisor then parks
    in degraded mode after a bounded number of attempts rather than
    crash-looping (covered end-to-end in ``test_resilience.py``).
    """

    def _snapshot_payload(self):
        return {
            "adjacency": None,
            "weights": {"w0": np.ones((4, 2)).tolist()},
            "plan_keys": [((3,), 2)],
        }

    def test_snapshot_roundtrip_same_measurement(self):
        payload = self._snapshot_payload()
        measurement = measure_code({"scheme": "series", "dims": [16, 8]})
        blob = seal(payload, measurement)
        restored = unseal(blob, measurement)
        assert restored["plan_keys"] == payload["plan_keys"]
        assert restored["weights"] == payload["weights"]

    def test_skewed_measurement_fails_closed(self):
        """A code change (new layer width) must make old snapshots opaque."""
        old = measure_code({"scheme": "series", "dims": [16, 8]})
        new = measure_code({"scheme": "series", "dims": [32, 8]})
        blob = seal(self._snapshot_payload(), old)
        with pytest.raises(SealingError):
            unseal(blob, new)

    def test_skew_failure_is_deterministic_not_looping(self):
        """Every retry fails identically — restarting cannot help, which is
        why the supervisor treats SealingError as terminal."""
        blob = seal(self._snapshot_payload(), "build-1")
        for _ in range(3):
            with pytest.raises(SealingError):
                unseal(blob, "build-2")

    def test_enclave_restore_skew_degrades_supervisor(self, trained_vault):
        """End-to-end: a supervisor holding a skewed snapshot degrades after
        its bounded attempt instead of burning the restart budget."""
        from repro.deploy import EnclaveSupervisor, SecureInferenceSession
        from repro.errors import RecoveryFailed

        run = trained_vault
        session = SecureInferenceSession(
            backbone=run.backbone,
            rectifier=run.rectifiers["series"],
            substitute_adjacency=run.substitute,
            private_adjacency=run.graph.adjacency,
        )
        supervisor = EnclaveSupervisor(session)
        supervisor._snapshot = seal(self._snapshot_payload(), "other-build")
        session.enclave.kill()
        with pytest.raises(RecoveryFailed):
            supervisor.recover()
        assert supervisor.degraded
        assert supervisor.restarts_total == 0


class TestAttestation:
    def test_valid_quote_verifies(self):
        quote = generate_quote("enclave-m", "challenge-1")
        verify_quote(quote, "enclave-m", "challenge-1")  # no raise

    def test_wrong_measurement_rejected(self):
        quote = generate_quote("enclave-m")
        with pytest.raises(AttestationError):
            verify_quote(quote, "other-enclave")

    def test_wrong_challenge_rejected(self):
        quote = generate_quote("enclave-m", "challenge-1")
        with pytest.raises(AttestationError):
            verify_quote(quote, "enclave-m", "challenge-2")

    def test_forged_signature_rejected(self):
        quote = generate_quote("enclave-m")
        forged = type(quote)(quote.measurement, quote.user_data, b"\x00" * 32)
        with pytest.raises(AttestationError):
            verify_quote(forged, "enclave-m")

    def test_replayed_quote_for_other_measurement_rejected(self):
        """A quote for enclave A cannot attest enclave B."""
        quote_a = generate_quote("A")
        forged = type(quote_a)("B", quote_a.user_data, quote_a.signature)
        with pytest.raises(AttestationError):
            verify_quote(forged, "B")
