"""Experiment driver tests (fast configurations of each table/figure)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    make_substitute_builder,
    render_fig4,
    render_fig6,
    render_table1,
    run_fig4,
    run_fig6,
    run_gnnvault,
    run_table1,
)
from repro.graph import CooAdjacency
from repro.training import TrainConfig
from tests.conftest import TINY_PRESET, FAST_TRAIN


class TestPipeline:
    def test_run_returns_all_metrics(self, trained_vault):
        run = trained_vault
        assert 0 <= run.p_org <= 1
        assert 0 <= run.p_bb <= 1
        assert set(run.p_rec) == {"parallel", "series", "cascaded"}
        assert run.theta_bb > run.theta_rec("series")

    def test_protection_and_degradation(self, trained_vault):
        run = trained_vault
        assert run.protection("parallel") == pytest.approx(
            run.p_rec["parallel"] - run.p_bb
        )
        assert run.degradation("parallel") == pytest.approx(
            run.p_org - run.p_rec["parallel"]
        )

    def test_embedding_access(self, trained_vault):
        run = trained_vault
        bb = run.backbone_embeddings()
        org = run.original_embeddings()
        assert len(bb) == len(org) == 3
        assert bb[0].shape[0] == run.graph.num_nodes

    def test_mlp_backbone_kind(self, session_graph):
        run = run_gnnvault(
            graph=session_graph,
            schemes=("series",),
            backbone_kind="mlp",
            preset=TINY_PRESET,
            train_config=FAST_TRAIN,
            train_original=False,
        )
        assert run.p_rec["series"] > 0

    def test_unknown_backbone_kind(self, session_graph):
        with pytest.raises(ValueError):
            run_gnnvault(graph=session_graph, backbone_kind="cnn")

    def test_skip_original_training(self, session_graph):
        run = run_gnnvault(
            graph=session_graph,
            schemes=("series",),
            preset=TINY_PRESET,
            train_config=FAST_TRAIN,
            train_original=False,
        )
        assert run.p_org == 0.0


class TestSubstituteBuilderFactory:
    def test_knn(self):
        builder = make_substitute_builder("knn", knn_k=3)
        assert builder.k == 3

    def test_cosine_density_matched(self):
        reference = CooAdjacency.from_edge_list(10, [(0, 1), (2, 3)])
        builder = make_substitute_builder("cosine", reference, cosine_tau=0.3)
        assert builder.max_edges == 2

    def test_random_fraction(self):
        reference = CooAdjacency.from_edge_list(10, [(0, 1), (2, 3), (4, 5), (6, 7)])
        builder = make_substitute_builder(
            "random", reference, random_edge_fraction=0.5
        )
        assert builder.num_edges == 2

    def test_random_needs_reference(self):
        with pytest.raises(ValueError):
            make_substitute_builder("random")

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_substitute_builder("magic")


class TestTable1:
    def test_all_rows(self):
        rows = run_table1()
        assert [r.dataset for r in rows] == [
            "cora", "citeseer", "pubmed", "computer", "photo", "corafull",
        ]

    def test_dense_column_agrees_with_paper(self):
        for row in run_table1():
            assert row.computed_dense_mb == pytest.approx(row.paper_dense_mb, abs=0.02)

    def test_render(self):
        text = render_table1(run_table1(datasets=("cora",)))
        assert "cora" in text and "167.8" in text


class TestPaperReferenceData:
    def test_table2_covers_all_datasets(self):
        assert set(PAPER_TABLE2) == {
            "cora", "citeseer", "pubmed", "computer", "photo", "corafull",
        }

    def test_table2_consistency(self):
        """Published Δp must equal p_rec − p_bb within rounding."""
        for dataset, row in PAPER_TABLE2.items():
            for scheme in ("parallel", "series", "cascaded"):
                cell = row[scheme]
                assert cell["dp"] == pytest.approx(
                    cell["p_rec"] - row["p_bb"], abs=0.15
                ), (dataset, scheme)

    def test_table3_shapes(self):
        for dataset, row in PAPER_TABLE3.items():
            assert set(row) == {"dnn", "random", "cosine", "knn"}
            # random is always the worst backbone in the paper
            assert row["random"][0] == min(v[0] for v in row.values())

    def test_table4_gv_close_to_base(self):
        """Published claim: GNNVault attack AUC ≈ baseline AUC."""
        for dataset, metrics in PAPER_TABLE4.items():
            for metric, (m_org, m_gv, m_base) in metrics.items():
                assert m_org > m_gv
                assert abs(m_gv - m_base) < 0.06


class TestFig4:
    def test_runs_small(self):
        result = run_fig4(
            dataset="cora",
            train_config=TrainConfig(epochs=30, patience=15),
        )
        assert set(result.silhouette) == {"original", "backbone", "rectifier"}
        assert len(result.silhouette["rectifier"]) == 3
        text = render_fig4(result)
        assert "silhouette" in text

    def test_tsne_coords_optional(self):
        result = run_fig4(
            dataset="cora",
            train_config=TrainConfig(epochs=15, patience=10),
            compute_tsne=True,
            tsne_nodes=60,
        )
        coords = result.tsne_coords["rectifier"]
        assert len(coords) == 3
        assert coords[0].shape == (60, 2)


class TestFig6:
    def test_all_configurations(self):
        rows = run_fig6()
        assert len(rows) == 9  # 3 configs × 3 schemes

    def test_every_rectifier_fits_epc(self):
        assert all(row.fits_epc for row in run_fig6())

    def test_series_cheapest_transfer(self):
        rows = run_fig6()
        for config in ("M1", "M2", "M3"):
            subset = {r.scheme: r for r in rows if r.preset == config}
            assert subset["series"].transfer_seconds < subset["parallel"].transfer_seconds
            assert subset["series"].transfer_seconds < subset["cascaded"].transfer_seconds

    def test_series_smallest_enclave_memory(self):
        rows = run_fig6()
        for config in ("M1", "M2", "M3"):
            subset = {r.scheme: r for r in rows if r.preset == config}
            assert (
                subset["series"].enclave_memory_mb
                == min(r.enclave_memory_mb for r in subset.values())
            )

    def test_backbone_memory_exceeds_prm_for_m2(self):
        """Paper claim: full models cannot fit — backbone >> 128 MB PRM."""
        rows = [r for r in run_fig6() if r.preset == "M2"]
        assert all(r.backbone_memory_mb > 128.0 for r in rows)

    def test_protection_has_positive_overhead(self):
        assert all(row.overhead > 0 for row in run_fig6())

    def test_render(self):
        text = render_fig6(run_fig6())
        assert "M2/corafull" in text and "overhead" in text


class TestTrainConfigResolution:
    def test_corafull_gets_longer_budget(self):
        from repro.experiments import train_config_for

        assert train_config_for("corafull").epochs > train_config_for("cora").epochs

    def test_unknown_dataset_gets_default(self):
        from repro.experiments import DEFAULT_TRAIN, train_config_for

        assert train_config_for("something-else") == DEFAULT_TRAIN


class TestFig6Pipelining:
    def test_parallel_rows_carry_pipelined_latency(self):
        rows = run_fig6()
        for row in rows:
            if row.scheme == "parallel":
                assert row.pipelined_seconds is not None
                assert 0 < row.pipelined_seconds <= row.total_seconds + 1e-12
            else:
                assert row.pipelined_seconds is None
