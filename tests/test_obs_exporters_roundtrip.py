"""Exporter round-trips: Prometheus exposition and JSONL, escaping included."""

from __future__ import annotations

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    parse_metrics_jsonl,
    parse_prometheus,
    parse_prometheus_samples,
    render_metrics_jsonl,
    render_prometheus,
    traces_to_registry,
)
from repro.obs.exporters import _escape_label_value, _unescape_label_value


def populate() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("requests_total", help="requests").inc(7, route="query")
    registry.counter("requests_total").inc(3, route="update")
    registry.gauge("memory_bytes", help="rss").set(4096.0)
    hist = registry.histogram(
        "latency_seconds", help="latency", buckets=(0.01, 0.1, 1.0)
    )
    for value in (0.005, 0.05, 0.5, 5.0):
        hist.observe(value, stage="serve")
    return registry


class TestLabelEscaping:
    @pytest.mark.parametrize("raw", [
        'plain',
        'with "quotes"',
        'back\\slash',
        'new\nline',
        'mix "q" \\ and \n end',
        '',
    ])
    def test_escape_unescape_round_trip(self, raw):
        assert _unescape_label_value(_escape_label_value(raw)) == raw

    def test_escaped_values_survive_the_exposition_format(self):
        registry = MetricsRegistry()
        hostile = 'evil "label"\nwith\\escapes'
        registry.counter("c_total", help="h").inc(2, tag=hostile)
        text = render_prometheus(registry)
        # the raw newline must not split the sample line
        sample_lines = [l for l in text.splitlines() if not l.startswith("#")]
        assert len(sample_lines) == 1
        samples = parse_prometheus_samples(text)
        assert samples["c_total"][(("tag", hostile),)] == 2.0

    def test_structured_parser_matches_raw_parser_values(self):
        registry = populate()
        text = render_prometheus(registry)
        raw = parse_prometheus(text)
        structured = parse_prometheus_samples(text)
        for name, series in structured.items():
            assert sorted(series.values()) == sorted(raw[name].values())

    def test_structured_parser_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_prometheus_samples('m{unterminated="x 1')
        with pytest.raises(ValueError):
            parse_prometheus_samples("lonely_name_no_value")


class TestPrometheusRoundTrip:
    def test_counter_and_gauge_values(self):
        registry = populate()
        samples = parse_prometheus_samples(render_prometheus(registry))
        assert samples["requests_total"][(("route", "query"),)] == 7.0
        assert samples["requests_total"][(("route", "update"),)] == 3.0
        assert samples["memory_bytes"][()] == 4096.0

    def test_histogram_buckets_are_cumulative_and_complete(self):
        registry = populate()
        samples = parse_prometheus_samples(render_prometheus(registry))
        buckets = {
            dict(key)["le"]: value
            for key, value in samples["latency_seconds_bucket"].items()
        }
        assert buckets["0.01"] == 1.0
        assert buckets["0.1"] == 2.0
        assert buckets["1.0"] == 3.0
        assert buckets["+Inf"] == 4.0
        assert samples["latency_seconds_count"][(("stage", "serve"),)] == 4.0
        assert samples["latency_seconds_sum"][(("stage", "serve"),)] == \
            pytest.approx(5.555)


class TestJsonlRoundTrip:
    def test_registry_round_trips_losslessly(self):
        original = populate()
        rebuilt = parse_metrics_jsonl(render_metrics_jsonl(original))
        assert render_prometheus(rebuilt) == render_prometheus(original)
        # and the JSONL itself is stable across the round trip
        assert render_metrics_jsonl(rebuilt) == render_metrics_jsonl(original)

    def test_histogram_internals_survive(self):
        original = populate()
        rebuilt = parse_metrics_jsonl(render_metrics_jsonl(original))
        metric = rebuilt.get("latency_seconds")
        (labels, child), = metric.series()
        assert dict(labels) == {"stage": "serve"}
        assert child.bucket_counts == [1, 1, 1, 1]
        assert child.count == 4

    def test_hostile_label_values_round_trip(self):
        registry = MetricsRegistry()
        hostile = 'a "b"\nc\\d'
        registry.counter("c_total", help="h").inc(1, tag=hostile)
        rebuilt = parse_metrics_jsonl(render_metrics_jsonl(registry))
        (labels, value), = rebuilt.get("c_total").series()
        assert dict(labels) == {"tag": hostile}
        assert value == 1.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown metric kind"):
            parse_metrics_jsonl('{"name":"x","kind":"summary","series":[]}')

    def test_blank_lines_skipped(self):
        text = "\n" + render_metrics_jsonl(populate()) + "\n"
        rebuilt = parse_metrics_jsonl(text)
        assert rebuilt.get("requests_total") is not None


class TestTracesToRegistry:
    def test_aggregates_spans_into_stage_histograms(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("query"):
                with tracer.span("backbone"):
                    pass
                with tracer.span("ecall"):
                    pass
        registry = traces_to_registry(tracer)
        samples = parse_prometheus_samples(render_prometheus(registry))
        assert samples["trace_spans_total"][(("span", "query"),)] == 3.0
        counts = samples["trace_stage_seconds_count"]
        assert counts[(("span", "query"), ("stage", "total"))] == 3.0
        assert counts[(("span", "query"), ("stage", "backbone"))] == 3.0

    def test_accepts_span_list(self):
        tracer = Tracer()
        with tracer.span("query"):
            pass
        registry = traces_to_registry(tracer.roots())
        assert registry.get("trace_spans_total") is not None

    def test_empty_tracer_yields_empty_families(self):
        registry = traces_to_registry(Tracer())
        samples = parse_prometheus_samples(render_prometheus(registry))
        assert samples.get("trace_spans_total") is None


class TestGaugeLabelEscaping:
    """Gauges take the same escaping path as counters, but the pipeline
    gauges published by the scheduler are the first gauge family with
    operator-controlled provenance — pin the round trip explicitly."""

    def test_gauge_with_hostile_label_round_trips(self):
        registry = MetricsRegistry()
        hostile = 'shard "A"\\primary\nfailover'
        registry.gauge("pipeline_batches", help="b").set(42.0, shard=hostile)
        text = render_prometheus(registry)
        sample_lines = [l for l in text.splitlines() if not l.startswith("#")]
        assert len(sample_lines) == 1  # newline stayed escaped
        samples = parse_prometheus_samples(text)
        assert samples["pipeline_batches"][(("shard", hostile),)] == 42.0

    def test_double_render_is_stable(self):
        # render → parse → re-render must not double-escape
        registry = MetricsRegistry()
        hostile = 'a\\b"c'
        registry.counter("x_total", help="h").inc(1, tag=hostile)
        text = render_prometheus(registry)
        parsed = parse_metrics_jsonl(render_metrics_jsonl(registry))
        assert render_prometheus(parsed) == text
