"""LayerNorm tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


class TestLayerNorm:
    def test_normalises_rows(self):
        rng = np.random.default_rng(0)
        layer = nn.LayerNorm(6)
        out = layer(nn.Tensor(rng.random((10, 6)) * 5 + 2)).data
        np.testing.assert_allclose(out.mean(axis=1), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=1), 1.0, atol=1e-3)

    def test_affine_parameters_learnable(self):
        layer = nn.LayerNorm(4)
        assert len(layer.parameters()) == 2
        x = nn.Tensor(np.random.default_rng(1).random((5, 4)), requires_grad=True)
        layer(x).sum().backward()
        assert layer.gain.grad is not None
        assert layer.bias.grad is not None
        assert x.grad is not None

    def test_gain_and_bias_applied(self):
        layer = nn.LayerNorm(3)
        layer.gain.data[:] = 2.0
        layer.bias.data[:] = 1.0
        out = layer(nn.Tensor(np.array([[1.0, 2.0, 3.0]]))).data
        reference = nn.LayerNorm(3)(nn.Tensor(np.array([[1.0, 2.0, 3.0]]))).data
        np.testing.assert_allclose(out, reference * 2.0 + 1.0)

    def test_constant_rows_stable(self):
        layer = nn.LayerNorm(4)
        out = layer(nn.Tensor(np.ones((3, 4)))).data
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, 0.0, atol=1e-2)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            nn.LayerNorm(0)

    def test_gradient_matches_finite_differences(self):
        from tests.test_nn_tensor import numerical_gradient

        rng = np.random.default_rng(2)
        x_data = rng.random((4, 5)) + 0.5
        layer = nn.LayerNorm(5)
        layer.gain.data[:] = rng.random(5) + 0.5
        weight = rng.random((4, 5))

        def scalar_fn(data):
            return float((layer(nn.Tensor(data)).data * weight).sum())

        x = nn.Tensor(x_data.copy(), requires_grad=True)
        layer(x).backward(weight)
        expected = numerical_gradient(scalar_fn, x_data.copy())
        np.testing.assert_allclose(x.grad, expected, rtol=1e-4, atol=1e-6)

    def test_helps_training_a_deep_mlp(self):
        """Sanity: LayerNorm composes with the rest of the stack."""
        rng = np.random.default_rng(3)
        x = rng.random((60, 8))
        labels = x[:, :3].argmax(axis=1)

        class NormedMlp(nn.Module):
            def __init__(self):
                super().__init__()
                self.first = nn.Linear(8, 16, rng=rng)
                self.norm = nn.LayerNorm(16)
                self.second = nn.Linear(16, 3, rng=rng)

            def forward(self, inputs):
                return self.second(nn.relu(self.norm(self.first(inputs))))

        model = NormedMlp()
        optimizer = nn.Adam(model.parameters(), lr=0.05)
        first_loss = None
        for _ in range(120):
            optimizer.zero_grad()
            loss = nn.cross_entropy(model(nn.Tensor(x)), labels)
            if first_loss is None:
                first_loss = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < first_loss * 0.2
