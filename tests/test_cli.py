"""CLI tests (driven through ``repro.cli.main`` with fast configurations)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.dataset == "cora"
        assert args.scheme == "parallel"

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table9"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "cora" in out and "corafull" in out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_experiment_fig6(self, capsys):
        assert main(["experiment", "fig6"]) == 0
        assert "overhead" in capsys.readouterr().out

    def test_train_predict_roundtrip(self, tmp_path, capsys):
        bundle_dir = tmp_path / "bundle"
        code = main(
            [
                "train",
                "--dataset", "cora",
                "--scheme", "series",
                "--epochs", "25",
                "--patience", "10",
                "--output", str(bundle_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "p_rec" in out and "bundle exported" in out

        code = main(["predict", str(bundle_dir), str(bundle_dir / "dataset.npz")])
        assert code == 0
        out = capsys.readouterr().out
        assert "predicted" in out and "enclave" in out

    def test_calibration(self, capsys):
        assert main(["calibration"]) == 0
        out = capsys.readouterr().out
        assert "healthy" in out and "corafull" in out

    def test_report(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "table1_datasets.txt").write_text("Table body\n")
        code = main(["report", "--results-dir", str(results)])
        assert code == 0
        assert (results / "REPORT.md").exists()
        assert "report written" in capsys.readouterr().out

    def test_metrics_prints_prometheus(self, capsys):
        code = main(
            [
                "metrics", "--epochs", "5", "--patience", "5",
                "--queries", "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE vault_queries_total counter" in out
        assert "vault_queries_total 10" in out
        assert "enclave_ecalls_total" in out
        assert "p50" in out and "p99" in out

    def test_metrics_writes_file(self, tmp_path, capsys):
        target = tmp_path / "metrics.prom"
        code = main(
            [
                "metrics", "--epochs", "5", "--patience", "5",
                "--queries", "8", "--output", str(target),
            ]
        )
        assert code == 0
        from repro.obs import parse_prometheus

        parsed = parse_prometheus(target.read_text())
        assert parsed["vault_queries_total"][""] == 8
        assert f"written to {target}" in capsys.readouterr().out

    def test_trace_dumps_jsonl(self, tmp_path, capsys):
        import json

        target = tmp_path / "trace.jsonl"
        code = main(
            [
                "trace", "--epochs", "5", "--patience", "5",
                "--queries", "6", "--output", str(target),
            ]
        )
        assert code == 0
        lines = target.read_text().strip().splitlines()
        assert len(lines) == 6
        root = json.loads(lines[-1])
        assert root["name"] == "query"
        child_names = {c["name"] for c in root["children"]}
        assert {"backbone", "ecall"} <= child_names
        assert "last query stages" in capsys.readouterr().out

    def test_predict_specific_nodes(self, tmp_path, capsys):
        bundle_dir = tmp_path / "bundle"
        main(
            [
                "train", "--dataset", "cora", "--scheme", "series",
                "--epochs", "15", "--patience", "10",
                "--output", str(bundle_dir),
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "predict", str(bundle_dir), str(bundle_dir / "dataset.npz"),
                "--nodes", "0", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "node 0:" in out and "node 5:" in out


class TestObservabilityCommands:
    WORKLOAD = ["--epochs", "5", "--patience", "5", "--queries", "40"]

    def test_metrics_jsonl_format(self, tmp_path, capsys):
        target = tmp_path / "metrics.jsonl"
        code = main(
            ["metrics", *self.WORKLOAD, "--format", "jsonl",
             "--output", str(target)]
        )
        assert code == 0
        from repro.obs import parse_metrics_jsonl

        rebuilt = parse_metrics_jsonl(target.read_text())
        assert rebuilt.get("vault_queries_total").value() == 40
        assert "metrics (jsonl) written" in capsys.readouterr().out

    def test_trace_prom_format(self, capsys):
        code = main(["trace", *self.WORKLOAD, "--format", "prom"])
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE trace_spans_total counter" in out
        assert 'trace_spans_total{span="query"} 40' in out

    def test_format_choices_are_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["metrics", "--format", "xml"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--format", "xml"])

    def test_health_healthy_exits_zero(self, capsys):
        code = main(["health", *self.WORKLOAD])
        assert code == 0
        out = capsys.readouterr().out
        assert "HEALTHY" in out
        assert "warm_latency" in out and "paging_ratio" in out

    def test_health_probe_exits_one_with_security_alert(self, tmp_path, capsys):
        audit_path = tmp_path / "audit.jsonl"
        code = main(
            ["health", *self.WORKLOAD, "--probe",
             "--audit-output", str(audit_path)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "UNHEALTHY" in out
        assert "pair_probing" in out
        from repro.obs import parse_audit_jsonl

        events = parse_audit_jsonl(audit_path.read_text())
        assert any(e.kind == "security_alert" for e in events)
        assert any(e.origin == "enclave" for e in events)

    def test_health_no_data_exits_two(self, capsys):
        code = main(["health", "--epochs", "5", "--patience", "5",
                     "--queries", "0"])
        assert code == 2
        assert "NO DATA" in capsys.readouterr().out

    def test_dashboard_writes_self_contained_html(self, tmp_path, capsys):
        target = tmp_path / "dash.html"
        code = main(["dashboard", *self.WORKLOAD, "--output", str(target)])
        assert code == 0
        html = target.read_text()
        assert html.lstrip().startswith("<!DOCTYPE html>")
        assert "<svg" in html
        for marker in ("http://", "https://", "<script src", "<link"):
            assert marker not in html
        assert f"written to {target}" in capsys.readouterr().out


class TestProfileCommand:
    WORKLOAD = ["--epochs", "5", "--patience", "5", "--queries", "40"]

    def test_profile_writes_artifacts_and_reports(self, tmp_path, capsys):
        import json

        out_dir = tmp_path / "profile"
        code = main(
            ["profile", *self.WORKLOAD, "--clients", "4",
             "--max-batch", "8", "--output-dir", str(out_dir)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pipeline profile:" in out
        assert "ecall cost attribution" in out
        assert "profile artifact written to" in out

        doc = json.loads((out_dir / "timeline.json").read_text())
        assert doc["schema"] == "repro.profile.timeline/v1"
        assert doc["summary"]["queries"] == 40
        assert doc["traceEvents"]
        folded = (out_dir / "flame.folded").read_text()
        assert "pipeline;execute" in folded
        # span flamegraph from the tracer rides along when traces exist
        assert (out_dir / "spans.folded").exists()

    def test_profile_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["profile"])
        assert args.clients == 4
        assert args.max_batch == 8
        assert args.output_dir == "benchmarks/results/profile"
