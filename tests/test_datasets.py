"""Dataset registry, synthetic instantiation, and split tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    DENSE_ENTRY_BYTES,
    PAPER_DATASETS,
    Split,
    get_spec,
    list_datasets,
    load_dataset,
    per_class_split,
    synthesize,
)
from repro.graph import edge_homophily


class TestRegistry:
    def test_all_six_paper_datasets_present(self):
        assert set(list_datasets()) == {
            "cora", "citeseer", "pubmed", "computer", "photo", "corafull",
        }

    def test_published_statistics(self):
        cora = get_spec("cora")
        assert cora.num_nodes == 2708
        assert cora.num_edges == 10556
        assert cora.num_features == 1433
        assert cora.num_classes == 7

    @pytest.mark.parametrize("name", list(PAPER_DATASETS))
    def test_dense_adjacency_column_matches_n_squared(self, name):
        """Table I's Dense A column is exactly n² × 24 bytes."""
        spec = get_spec(name)
        assert spec.computed_dense_adjacency_mb() == pytest.approx(
            spec.dense_adjacency_mb, abs=0.02
        )

    def test_dense_entry_bytes_constant(self):
        assert DENSE_ENTRY_BYTES == 24

    def test_case_insensitive_lookup(self):
        assert get_spec("CoRa").name == "cora"

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            get_spec("imaginary")

    def test_average_degree(self):
        cora = get_spec("cora")
        assert cora.average_degree == pytest.approx(2 * 10556 / 2708)

    def test_scaled_shape_floors(self):
        corafull = get_spec("corafull")
        nodes, features = corafull.scaled_shape(0.001)
        assert nodes >= corafull.num_classes * 40
        assert features >= corafull.num_classes * 4

    def test_model_preset_assignment(self):
        assert get_spec("cora").model_preset == "M1"
        assert get_spec("corafull").model_preset == "M2"
        assert get_spec("computer").model_preset == "M3"


class TestSynthetic:
    def test_load_by_name(self):
        g = load_dataset("cora")
        assert g.name == "cora"
        assert g.num_classes == 7

    def test_deterministic(self):
        a = load_dataset("cora", seed=5)
        b = load_dataset("cora", seed=5)
        np.testing.assert_array_equal(a.features, b.features)
        assert a.adjacency.edge_set() == b.adjacency.edge_set()

    def test_seed_changes_graph(self):
        a = load_dataset("cora", seed=1)
        b = load_dataset("cora", seed=2)
        assert a.adjacency.edge_set() != b.adjacency.edge_set()

    def test_scale_controls_size(self):
        small = load_dataset("cora", scale=0.2)
        large = load_dataset("cora", scale=0.4)
        assert large.num_nodes > small.num_nodes

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            load_dataset("cora", scale=0.0)

    def test_homophily_matches_spec(self):
        spec = get_spec("cora")
        g = synthesize(spec, seed=0)
        measured = edge_homophily(g.adjacency, g.labels)
        assert measured == pytest.approx(spec.homophily, abs=0.1)

    def test_relative_density_preserved(self):
        """Computer (dense) stays denser than Citeseer (sparse) even after
        the degree cap that keeps per-hop mixing realistic under scaling."""
        computer = load_dataset("computer")
        citeseer = load_dataset("citeseer")
        deg_computer = 2 * computer.num_edges / computer.num_nodes
        deg_citeseer = 2 * citeseer.num_edges / citeseer.num_nodes
        assert deg_computer > 1.5 * deg_citeseer

    def test_every_class_represented(self):
        g = load_dataset("corafull")
        assert set(np.unique(g.labels)) == set(range(70))

    def test_stable_seed_differs_per_dataset(self):
        """Same seed must not yield identical structure across datasets."""
        a = load_dataset("cora", scale=0.2, seed=0)
        b = load_dataset("citeseer", scale=0.2, seed=0)
        assert a.num_nodes != b.num_nodes or a.adjacency.edge_set() != b.adjacency.edge_set()


class TestSplits:
    def test_sizes(self):
        labels = np.repeat(np.arange(4), 50)
        split = per_class_split(labels, train_per_class=20, val_fraction=0.1)
        assert split.train.size == 80
        assert split.val.size == pytest.approx(12, abs=1)
        assert split.train.size + split.val.size + split.test.size == 200

    def test_train_has_exactly_per_class(self):
        labels = np.repeat(np.arange(3), 40)
        split = per_class_split(labels, train_per_class=20)
        counts = np.bincount(labels[split.train])
        np.testing.assert_array_equal(counts, [20, 20, 20])

    def test_no_overlap(self):
        labels = np.repeat(np.arange(3), 30)
        split = per_class_split(labels, train_per_class=10)
        all_nodes = np.concatenate([split.train, split.val, split.test])
        assert np.unique(all_nodes).size == all_nodes.size

    def test_small_class_capped(self):
        labels = np.array([0] * 50 + [1] * 4)
        split = per_class_split(labels, train_per_class=20)
        # class 1 contributes at most half its members
        assert np.count_nonzero(labels[split.train] == 1) <= 2

    def test_deterministic(self):
        labels = np.repeat(np.arange(3), 40)
        a = per_class_split(labels, seed=9)
        b = per_class_split(labels, seed=9)
        np.testing.assert_array_equal(a.train, b.train)
        np.testing.assert_array_equal(a.test, b.test)

    def test_split_rejects_overlap(self):
        with pytest.raises(ValueError):
            Split(train=np.array([0, 1]), val=np.array([1]), test=np.array([2]))

    def test_sizes_property(self):
        split = Split(np.array([0]), np.array([1]), np.array([2, 3]))
        assert split.sizes == (1, 1, 2)
