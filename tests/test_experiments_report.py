"""Report collation tests."""

from __future__ import annotations

import pytest

from repro.experiments import collect_results, generate_report, write_report


@pytest.fixture
def results_dir(tmp_path):
    directory = tmp_path / "results"
    directory.mkdir()
    (directory / "table1_datasets.txt").write_text("Table I body\n")
    (directory / "custom_extra.txt").write_text("extra body\n")
    return directory


class TestCollect:
    def test_reads_all_txt(self, results_dir):
        results = collect_results(results_dir)
        assert set(results) == {"table1_datasets", "custom_extra"}
        assert results["table1_datasets"] == "Table I body"

    def test_missing_dir_empty(self, tmp_path):
        assert collect_results(tmp_path / "nope") == {}


class TestGenerate:
    def test_known_sections_ordered_first(self, results_dir):
        report = generate_report(results_dir)
        assert report.index("Table I — datasets") < report.index("custom_extra")

    def test_unknown_files_appended(self, results_dir):
        report = generate_report(results_dir)
        assert "extra body" in report

    def test_empty_dir_message(self, tmp_path):
        directory = tmp_path / "empty"
        directory.mkdir()
        assert "No archived results" in generate_report(directory)

    def test_code_fences(self, results_dir):
        report = generate_report(results_dir)
        assert report.count("```") % 2 == 0


class TestWrite:
    def test_default_location(self, results_dir):
        path = write_report(results_dir)
        assert path == results_dir / "REPORT.md"
        assert path.exists()

    def test_custom_location(self, results_dir, tmp_path):
        out = tmp_path / "custom.md"
        assert write_report(results_dir, out) == out
        assert "Table I body" in out.read_text()
