"""Property-based tests for the extension modules (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.defense import (
    GaussianNoiseDefense,
    QuantizationDefense,
    TopKLogitDefense,
)
from repro.deploy import extend_adjacency, zipf_workload
from repro.graph import CooAdjacency, extract_subgraph, k_hop_neighbourhood
from repro.models import quantize_array

SETTINGS = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def graphs_with_target(draw, max_nodes=15):
    n = draw(st.integers(2, max_nodes))
    num_edges = draw(st.integers(0, n * 2))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    target = draw(st.integers(0, n - 1))
    hops = draw(st.integers(0, 3))
    return CooAdjacency.from_edge_list(n, edges), target, hops


class TestSubgraphProperties:
    @SETTINGS
    @given(graphs_with_target())
    def test_neighbourhood_contains_target(self, data):
        adjacency, target, hops = data
        nodes = k_hop_neighbourhood(adjacency, [target], hops)
        assert target in set(nodes.tolist())

    @SETTINGS
    @given(graphs_with_target())
    def test_neighbourhood_monotone_in_hops(self, data):
        adjacency, target, hops = data
        inner = set(k_hop_neighbourhood(adjacency, [target], hops).tolist())
        outer = set(k_hop_neighbourhood(adjacency, [target], hops + 1).tolist())
        assert inner <= outer

    @SETTINGS
    @given(graphs_with_target())
    def test_induced_edges_subset_of_original(self, data):
        adjacency, target, hops = data
        sub = extract_subgraph(adjacency, [target], hops)
        lifted = {
            (min(sub.nodes[u], sub.nodes[v]), max(sub.nodes[u], sub.nodes[v]))
            for u, v in sub.adjacency.edge_set()
        }
        assert lifted <= adjacency.edge_set()

    @SETTINGS
    @given(graphs_with_target())
    def test_global_degrees_at_least_induced(self, data):
        adjacency, target, hops = data
        sub = extract_subgraph(adjacency, [target], hops)
        induced_degrees = sub.adjacency.degrees() + 1.0
        assert np.all(sub.global_degrees >= induced_degrees - 1e-9)


class TestUpdateProperties:
    @SETTINGS
    @given(graphs_with_target())
    def test_extend_preserves_existing_edges(self, data):
        adjacency, target, _ = data
        extended = extend_adjacency(adjacency, [target])
        assert adjacency.edge_set() <= extended.edge_set()
        assert extended.num_nodes == adjacency.num_nodes + 1

    @SETTINGS
    @given(graphs_with_target())
    def test_extended_graph_symmetric(self, data):
        adjacency, target, _ = data
        extended = extend_adjacency(adjacency, [target])
        assert extended.is_symmetric()


finite_matrices = hnp.arrays(
    np.float64,
    st.tuples(st.integers(2, 10), st.integers(2, 8)),
    elements=st.floats(-100.0, 100.0, allow_nan=False),
)


class TestDefenseProperties:
    @SETTINGS
    @given(finite_matrices)
    def test_quantization_stays_in_range(self, x):
        out = QuantizationDefense(levels=4).apply(x)
        assert out.min() >= x.min() - 1e-9
        assert out.max() <= x.max() + 1e-9

    @SETTINGS
    @given(finite_matrices)
    def test_topk_preserves_max_value(self, x):
        """The released argmax always attains the true row maximum
        (ties may keep a different-but-equal column)."""
        out = TopKLogitDefense(k=1).apply(x)
        rows = np.arange(x.shape[0])
        np.testing.assert_allclose(x[rows, out.argmax(axis=1)], x.max(axis=1))

    @SETTINGS
    @given(finite_matrices, st.integers(0, 1000))
    def test_gaussian_zero_scale_identity(self, x, seed):
        out = GaussianNoiseDefense(scale=0.0, seed=seed).apply(x)
        np.testing.assert_array_equal(out, x)


class TestQuantizeArrayProperties:
    @SETTINGS
    @given(finite_matrices, st.integers(2, 16))
    def test_error_bounded_by_half_step(self, x, bits):
        snapped, scale = quantize_array(x, bits)
        assert np.abs(snapped - x).max() <= scale / 2 + 1e-9

    @SETTINGS
    @given(finite_matrices, st.integers(2, 16))
    def test_idempotent(self, x, bits):
        once, _ = quantize_array(x, bits)
        twice, _ = quantize_array(once, bits)
        np.testing.assert_allclose(once, twice, atol=1e-12)


class TestWorkloadProperties:
    @SETTINGS
    @given(st.integers(1, 200), st.integers(0, 300), st.integers(0, 100))
    def test_zipf_in_range(self, nodes, queries, seed):
        workload = zipf_workload(nodes, queries, seed=seed)
        assert workload.shape == (queries,)
        if queries:
            assert workload.min() >= 0 and workload.max() < nodes
