"""SGX cost model tests: formulae, monotonicity, validation."""

from __future__ import annotations

import pytest

from repro.tee import DEFAULT_COST_MODEL, SgxCostModel


@pytest.fixture
def cost():
    return SgxCostModel(
        cpu_gflops=10.0,
        enclave_slowdown=5.0,
        sparse_efficiency=0.1,
        ecall_latency_s=1e-5,
        transfer_bytes_per_s=1e9,
        page_swap_latency_s=1e-4,
        memory_bytes_per_s=1e10,
    )


class TestDenseMatmul:
    def test_formula(self, cost):
        # 2*10*10*10 = 2000 flops at 10 GF/s
        assert cost.dense_matmul_time(10, 10, 10) == pytest.approx(2000 / 1e10)

    def test_enclave_slowdown_applied(self, cost):
        outside = cost.dense_matmul_time(100, 100, 100)
        inside = cost.dense_matmul_time(100, 100, 100, in_enclave=True)
        assert inside == pytest.approx(outside * 5.0)

    def test_monotone_in_size(self, cost):
        assert cost.dense_matmul_time(20, 20, 20) > cost.dense_matmul_time(10, 10, 10)


class TestSparseMatmul:
    def test_formula(self, cost):
        # 2*1000*8 flops at 10 GF/s * 0.1 efficiency
        assert cost.sparse_matmul_time(1000, 8) == pytest.approx(16000 / 1e9)

    def test_slower_than_dense_per_flop(self, cost):
        dense = cost.dense_matmul_time(1, 1000, 8)
        sparse = cost.sparse_matmul_time(1000, 8)
        assert sparse > dense


class TestTransitions:
    def test_ecall_fixed_plus_linear(self, cost):
        empty = cost.ecall_time(0)
        loaded = cost.ecall_time(10**9)
        assert empty == pytest.approx(1e-5)
        assert loaded == pytest.approx(1e-5 + 1.0)

    def test_negative_payload_rejected(self, cost):
        with pytest.raises(ValueError):
            cost.ecall_time(-1)

    def test_paging_linear(self, cost):
        assert cost.paging_time(10) == pytest.approx(1e-3)
        assert cost.paging_time(0) == 0.0

    def test_negative_pages_rejected(self, cost):
        with pytest.raises(ValueError):
            cost.paging_time(-1)

    def test_untrusted_copy(self, cost):
        assert cost.untrusted_copy_time(1e10) == pytest.approx(1.0)

    def test_elementwise_slower_in_enclave(self, cost):
        assert cost.elementwise_time(1000, in_enclave=True) > cost.elementwise_time(1000)


class TestDefaults:
    def test_default_model_valid(self):
        assert DEFAULT_COST_MODEL.cpu_gflops > 0
        assert DEFAULT_COST_MODEL.enclave_slowdown > 1.0

    def test_rejects_nonpositive_constants(self):
        with pytest.raises(ValueError):
            SgxCostModel(cpu_gflops=0.0)
        with pytest.raises(ValueError):
            SgxCostModel(transfer_bytes_per_s=-1.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COST_MODEL.cpu_gflops = 1.0
