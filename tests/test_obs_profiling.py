"""Continuous profiling layer: timelines, cost attribution, exporters.

The timeline's load-bearing property is tiling: the six pipeline
segments are consecutive differences of one perf_counter clock's
boundary timestamps, so they sum to the batch's wall time *exactly* —
coverage 1.0 is a property of the construction, and these tests pin
that construction (clamping, zero-wall guards, aggregation) so it
survives refactors. Cost records must pass the enclave telemetry gate's
closed schema at construction; the integration test reconciles the
per-batch attribution against the enclave's own lifetime counters.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.deploy import (
    BatchPolicy,
    MicroBatchScheduler,
    SecureInferenceSession,
    VaultServer,
    zipf_workload,
)
from repro.deploy.profiler import InferenceProfile
from repro.obs import (
    BatchTimeline,
    PipelineProfiler,
    ProfileReport,
    TelemetryLeak,
    enclave_cost_record,
    spans_to_folded,
    timelines_to_folded,
    timelines_to_json,
    validate_cost_record,
)
from repro.obs.profiling import SEGMENTS, render_gantt
from repro.obs.tracing import Span
from repro.tee.runtime import SgxCostModel


def _timeline(index=1, overlap=0.0, profile=None, cost=None, **bounds):
    """A timeline with explicit boundary offsets (seconds from t=0)."""
    defaults = dict(
        queued_at=0.0, collect_start=0.001, stage_start=0.002,
        stage_end=0.005, execute_start=0.006, execute_end=0.010,
        done_at=0.011,
    )
    defaults.update(bounds)
    return BatchTimeline(
        index=index, num_queries=4, targets_requested=4, targets_unique=3,
        overlap_seconds=overlap, profile=profile, cost=cost or {},
        **defaults,
    )


def _profile(backbone=0.002, transfer=0.001, enclave=0.004, paging=0.001,
             payload=4096, peak=1 << 20):
    return InferenceProfile(
        backbone_seconds=backbone, transfer_seconds=transfer,
        enclave_seconds=enclave, paging_seconds=paging,
        payload_bytes=payload, peak_enclave_memory_bytes=peak,
    )


class TestBatchTimeline:
    def test_segments_tile_wall_exactly(self):
        t = _timeline()
        segs = t.segments()
        assert tuple(segs) == SEGMENTS
        assert sum(segs.values()) == pytest.approx(t.wall_seconds, abs=1e-12)
        assert t.coverage() == pytest.approx(1.0)
        assert segs["queue"] == pytest.approx(0.001)
        assert segs["execute"] == pytest.approx(0.004)

    def test_out_of_order_timestamps_clamp_to_zero(self):
        # stage_end recorded *before* stage_start: the stage segment
        # clamps to 0 rather than going negative and inflating coverage.
        t = _timeline(stage_start=0.005, stage_end=0.002)
        segs = t.segments()
        assert segs["stage"] == 0.0
        assert all(value >= 0.0 for value in segs.values())

    def test_zero_wall_coverage_is_one(self):
        t = _timeline(
            queued_at=1.0, collect_start=1.0, stage_start=1.0,
            stage_end=1.0, execute_start=1.0, execute_end=1.0, done_at=1.0,
        )
        assert t.wall_seconds == 0.0
        assert t.coverage() == 1.0

    def test_overlap_fraction_guards_zero_stage(self):
        t = _timeline(stage_start=0.002, stage_end=0.002, overlap=0.5)
        assert t.overlap_fraction == 0.0

    def test_overlap_fraction_clamped_to_unit_interval(self):
        assert _timeline(overlap=99.0).overlap_fraction == 1.0
        assert _timeline(overlap=-1.0).overlap_fraction == 0.0
        assert _timeline(overlap=0.0015).overlap_fraction == pytest.approx(
            0.5
        )

    def test_bubble_is_handoff_gap(self):
        t = _timeline(stage_end=0.005, execute_start=0.0075)
        assert t.bubble_seconds == pytest.approx(0.0025)
        assert t.segments()["handoff"] == pytest.approx(0.0025)

    def test_to_dict_includes_profile_stages(self):
        profile = _profile()
        t = _timeline(profile=profile, cost={"ecall_count": 1})
        d = t.to_dict()
        assert d["stages"] == profile.breakdown()
        assert d["cost"] == {"ecall_count": 1}
        assert _timeline().to_dict().get("stages") is None


class TestCostRecord:
    def test_cost_record_joins_profile_and_cost_model(self):
        cost_model = SgxCostModel()
        profile = _profile(enclave=0.004, paging=0.001)
        record = enclave_cost_record(
            profile, ecall_count=2, cost_model=cost_model
        )
        assert record["ecall_count"] == 2
        assert record["compute_seconds"] == pytest.approx(0.003)
        assert record["paging_seconds"] == pytest.approx(0.001)
        assert record["paging_pages"] == profile.estimated_pages(cost_model)
        assert record["payload_bytes"] == 4096

    def test_cost_record_uses_default_cost_model(self):
        record = enclave_cost_record(_profile())
        assert record["paging_pages"] > 0

    def test_validate_rejects_forbidden_vocabulary(self):
        with pytest.raises(TelemetryLeak):
            validate_cost_record({"node_count": 3})

    def test_validate_rejects_unsuffixed_key(self):
        with pytest.raises(TelemetryLeak):
            validate_cost_record({"latency": 0.1})

    def test_validate_rejects_non_scalar_value(self):
        with pytest.raises(TelemetryLeak):
            validate_cost_record({"payload_bytes": [1, 2, 3]})

    def test_validate_returns_record_unchanged(self):
        record = {"transfer_seconds": 0.1}
        assert validate_cost_record(record) is record


class TestPipelineProfiler:
    def test_deque_bound_keeps_memory_constant(self):
        profiler = PipelineProfiler(max_batches=4)
        for index in range(10):
            profiler.record(_timeline(index=index))
        assert len(profiler) == 4
        assert profiler.batches_recorded == 10
        assert profiler.queries_recorded == 40
        assert [t.index for t in profiler.timelines()] == [6, 7, 8, 9]

    def test_nonpositive_bound_rejected(self):
        with pytest.raises(ValueError):
            PipelineProfiler(max_batches=0)

    def test_clear_empties_snapshot_not_counters(self):
        profiler = PipelineProfiler()
        profiler.record(_timeline())
        profiler.clear()
        assert len(profiler) == 0
        assert profiler.batches_recorded == 1


class TestProfileReport:
    def test_aggregation_sums_segments_and_costs(self):
        timelines = [
            _timeline(index=1, cost={"ecall_count": 1, "payload_bytes": 10,
                                     "peak_memory_bytes": 100}),
            _timeline(index=2, cost={"ecall_count": 1, "payload_bytes": 30,
                                     "peak_memory_bytes": 70}),
        ]
        report = ProfileReport.from_timelines(timelines)
        assert report.batches == 2
        assert report.queries == 8
        assert report.mean_batch_size == pytest.approx(4.0)
        assert report.coverage == pytest.approx(1.0)
        assert report.cost_totals["payload_bytes"] == 40
        # peak memory aggregates as a max, not a sum
        assert report.cost_totals["peak_memory_bytes"] == 100
        assert report.ecalls_per_query == pytest.approx(2 / 8)

    def test_empty_report(self):
        report = ProfileReport.from_timelines([])
        assert report.batches == 0
        assert report.coverage == 1.0
        assert report.mean_batch_size == 0.0
        assert report.ecalls_per_query == 0.0

    def test_render_contains_segments_and_gantt(self):
        timelines = [_timeline(cost={"ecall_count": 1})]
        text = ProfileReport.from_timelines(timelines).render(timelines)
        for name in SEGMENTS:
            assert name in text
        assert "ecall cost attribution" in text
        assert "batch 1 (4 queries" in text
        assert "#" in text  # the Gantt bars

    def test_gantt_bars_scale_with_segments(self):
        rows = render_gantt(_timeline(), width=40).splitlines()
        execute_row = next(row for row in rows if "execute" in row)
        queue_row = next(row for row in rows if "queue" in row)
        assert execute_row.count("#") > queue_row.count("#")


class TestExporters:
    def test_timeline_json_roundtrip(self):
        timelines = [
            _timeline(index=1, cost={"ecall_count": 1}),
            _timeline(index=2, queued_at=0.02, collect_start=0.021,
                      stage_start=0.022, stage_end=0.025,
                      execute_start=0.026, execute_end=0.030, done_at=0.031),
        ]
        doc = json.loads(timelines_to_json(timelines))
        assert doc["schema"] == "repro.profile.timeline/v1"
        assert doc["summary"]["batches"] == 2
        assert len(doc["batches"]) == 2
        assert len(doc["traceEvents"]) == 2 * len(SEGMENTS)
        first = doc["traceEvents"][0]
        assert first["ph"] == "X"
        assert first["ts"] == 0.0  # origin-relative
        # collector stages on tid 1, enclave worker on tid 2
        tids = {e["name"].split(" ")[0]: e["tid"] for e in doc["traceEvents"]}
        assert tids["stage"] == 1
        assert tids["execute"] == 2

    def test_folded_execute_attribution_is_proportional(self):
        profile = _profile(transfer=0.001, enclave=0.004, paging=0.001)
        text = timelines_to_folded([_timeline(profile=profile)])
        weights = {
            line.rsplit(" ", 1)[0]: int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
        }
        execute_children = [
            weights["pipeline;execute;transfer"],
            weights["pipeline;execute;rectifier"],
            weights["pipeline;execute;paging"],
        ]
        # children tile the measured execute wall time (4 ms)...
        assert sum(execute_children) == pytest.approx(4000, abs=2)
        # ...in the cost model's 1:3:1 proportion
        assert execute_children[1] == pytest.approx(
            3 * execute_children[0], abs=2
        )

    def test_folded_without_profile_keeps_flat_execute(self):
        text = timelines_to_folded([_timeline()])
        assert "pipeline;execute " in text
        assert "rectifier" not in text

    def test_spans_to_folded_self_time_semantics(self):
        parent = Span("serve")
        parent.set_seconds(0.010)
        parent.add_stage("backbone", 0.004)
        parent.add_stage("ecall", 0.005)
        folded = dict(
            line.rsplit(" ", 1) for line in
            spans_to_folded([parent]).splitlines()
        )
        assert int(folded["serve"]) == 1000  # 10 ms minus children
        assert int(folded["serve;backbone"]) == 4000
        assert int(folded["serve;ecall"]) == 5000

    def test_folded_drops_zero_weight_frames(self):
        t = _timeline(queued_at=0.001)  # queue segment becomes 0
        assert "pipeline;queue" not in timelines_to_folded([t])


class TestPipelineIntegration:
    """End-to-end: scheduler → profiler → reconciled cost attribution."""

    NUM_QUERIES = 96
    CLIENTS = 4

    @pytest.fixture
    def server(self, trained_vault):
        run = trained_vault
        session = SecureInferenceSession(
            run.backbone, run.rectifiers["series"], run.substitute,
            run.graph.adjacency,
        )
        return VaultServer(session, run.graph.features)

    def _drive(self, scheduler, workload):
        errors = []

        def client(index):
            try:
                for node in workload[index::self.CLIENTS]:
                    scheduler.query(int(node), client=f"client_{index}")
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(self.CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors

    def test_pipelined_timelines_cover_and_reconcile(self, trained_vault,
                                                     server):
        run = trained_vault
        workload = zipf_workload(run.graph.num_nodes, self.NUM_QUERIES,
                                 seed=5)
        profiler = PipelineProfiler()
        enclave = server._session.enclave
        before = enclave.ecall_cost_totals()
        policy = BatchPolicy(max_batch_size=8, max_wait_ms=2.0)
        with MicroBatchScheduler(server, policy, profiler=profiler) as sched:
            self._drive(sched, workload)

        timelines = profiler.timelines()
        assert timelines
        assert profiler.queries_recorded == self.NUM_QUERIES

        # Tiling: every batch accounts for its whole wall time.
        for t in timelines:
            assert t.coverage() == pytest.approx(1.0, abs=1e-9)
            assert t.profile is not None
            assert isinstance(t.profile, InferenceProfile)
            validate_cost_record(t.cost)

        # Reconciliation: summed per-batch attribution equals the
        # enclave's own lifetime counters over the same window.
        after = enclave.ecall_cost_totals()
        totals = profiler.report().cost_totals
        assert totals["ecall_count"] == (
            after["ecall_count"] - before["ecall_count"]
        )
        assert totals["payload_bytes"] == (
            after["payload_bytes"] - before["payload_bytes"]
        )
        for key in ("transfer_seconds", "paging_seconds"):
            assert totals[key] == pytest.approx(
                after[key] - before[key], abs=1e-9
            )

    def test_scheduler_close_publishes_pipeline_gauges(self, trained_vault,
                                                       server):
        run = trained_vault
        workload = zipf_workload(run.graph.num_nodes, 24, seed=6)
        policy = BatchPolicy(max_batch_size=8, max_wait_ms=2.0)
        with MicroBatchScheduler(server, policy) as sched:
            self._drive(sched, workload)
        registry = server.telemetry.registry
        assert registry.get("pipeline_queries").value() == 24.0
        assert registry.get("pipeline_batches").value() >= 1.0

    def test_sequential_hook_records_degenerate_timelines(self, trained_vault,
                                                          server):
        run = trained_vault
        profiler = PipelineProfiler()
        server.attach_profiler(profiler)
        try:
            server.serve(zipf_workload(run.graph.num_nodes, 12, seed=7),
                         batch_size=4)
        finally:
            server.detach_profiler()
        timelines = profiler.timelines()
        assert len(timelines) == 3  # 12 queries at batch_size=4
        for t in timelines:
            # no scheduler: queue/collect/handoff collapse to zero
            segs = t.segments()
            assert segs["queue"] == 0.0
            assert segs["collect"] == 0.0
            assert t.coverage() == pytest.approx(1.0, abs=1e-9)
            validate_cost_record(t.cost)
        # detached: serving again records nothing
        server.serve(np.array([0, 1]), batch_size=1)
        assert len(profiler.timelines()) == 3
