"""Generator tests: SBM structure, feature/class correlation, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    class_conditional_features,
    edge_homophily,
    make_sbm_graph,
    planted_partition_edges,
)
from repro.substitute import cosine_similarity_matrix


class TestPlantedPartition:
    def test_edge_budget_respected(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 3, 200)
        adj = planted_partition_edges(labels, avg_degree=6.0, homophily=0.8, rng=rng)
        target = 6.0 * 200 / 2
        assert adj.num_edges <= target
        assert adj.num_edges > target * 0.7  # oversampling covers most of it

    def test_high_homophily_graph_is_homophilous(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 4, 300)
        adj = planted_partition_edges(labels, 8.0, homophily=0.9, rng=rng)
        assert edge_homophily(adj, labels) > 0.8

    def test_low_homophily_graph_is_mixed(self):
        rng = np.random.default_rng(2)
        labels = rng.integers(0, 4, 300)
        adj = planted_partition_edges(labels, 8.0, homophily=0.25, rng=rng)
        assert edge_homophily(adj, labels) < 0.5

    def test_symmetric_no_self_loops(self):
        rng = np.random.default_rng(3)
        labels = rng.integers(0, 2, 50)
        adj = planted_partition_edges(labels, 4.0, 0.8, rng)
        assert adj.is_symmetric()
        assert not np.any(adj.rows == adj.cols)

    def test_tiny_graph(self):
        rng = np.random.default_rng(4)
        adj = planted_partition_edges(np.array([0]), 2.0, 0.5, rng)
        assert adj.num_edges == 0

    def test_invalid_homophily(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError):
            planted_partition_edges(np.zeros(10, dtype=int), 2.0, 1.5, rng)


class TestClassConditionalFeatures:
    def test_shape_and_binary(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 3, 50)
        x = class_conditional_features(labels, 60, rng, active_per_node=10)
        assert x.shape == (50, 60)
        assert set(np.unique(x)) <= {0.0, 1.0}

    def test_sparsity_bounded_by_active_words(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 3, 30)
        x = class_conditional_features(labels, 60, rng, active_per_node=10)
        assert np.all(x.sum(axis=1) <= 10)
        assert np.all(x.sum(axis=1) >= 1)

    def test_same_class_nodes_more_similar(self):
        rng = np.random.default_rng(2)
        labels = np.repeat([0, 1, 2], 40)
        x = class_conditional_features(
            labels, 120, rng, active_per_node=15, topic_concentration=0.8,
            subtopics_per_class=1,
        )
        sim = cosine_similarity_matrix(x)
        same = labels[:, None] == labels[None, :]
        np.fill_diagonal(same, False)
        off_diag = ~np.eye(len(labels), dtype=bool)
        assert sim[same].mean() > sim[~same & off_diag].mean() + 0.05

    def test_concentration_controls_correlation(self):
        labels = np.repeat([0, 1], 50)

        def class_gap(concentration, seed):
            rng = np.random.default_rng(seed)
            x = class_conditional_features(
                labels, 80, rng, topic_concentration=concentration,
                subtopics_per_class=1,
            )
            sim = cosine_similarity_matrix(x)
            same = labels[:, None] == labels[None, :]
            np.fill_diagonal(same, False)
            off = ~np.eye(100, dtype=bool)
            return sim[same].mean() - sim[~same & off].mean()

        assert class_gap(0.9, 3) > class_gap(0.2, 3)

    def test_too_few_features_raises(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError):
            class_conditional_features(np.arange(5), 3, rng)

    def test_invalid_subtopics(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError):
            class_conditional_features(np.zeros(4, dtype=int), 16, rng, subtopics_per_class=0)


class TestMakeSbmGraph:
    def test_basic_shape(self):
        g = make_sbm_graph(80, 4, 32, 5.0, seed=0)
        assert g.num_nodes == 80
        assert g.num_features == 32
        assert g.num_classes == 4

    def test_every_class_present(self):
        g = make_sbm_graph(30, 7, 56, 4.0, seed=1)
        assert set(np.unique(g.labels)) == set(range(7))

    def test_deterministic_by_seed(self):
        a = make_sbm_graph(50, 3, 24, 4.0, seed=42)
        b = make_sbm_graph(50, 3, 24, 4.0, seed=42)
        np.testing.assert_array_equal(a.features, b.features)
        assert a.adjacency.edge_set() == b.adjacency.edge_set()

    def test_different_seeds_differ(self):
        a = make_sbm_graph(50, 3, 24, 4.0, seed=1)
        b = make_sbm_graph(50, 3, 24, 4.0, seed=2)
        assert a.adjacency.edge_set() != b.adjacency.edge_set()

    def test_class_weights(self):
        g = make_sbm_graph(
            300, 2, 16, 4.0, class_weights=[0.9, 0.1], seed=3
        )
        counts = np.bincount(g.labels)
        assert counts[0] > counts[1] * 3

    def test_invalid_scale_params(self):
        with pytest.raises(ValueError):
            make_sbm_graph(10, 2, 8, 4.0, homophily=-0.1)
