"""Crash recovery: sealed snapshots, the enclave supervisor, degraded mode."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.deploy import (
    BatchPolicy,
    DEGRADED_BACKBONE_ONLY,
    EnclaveSupervisor,
    MicroBatchScheduler,
    RecoveryPolicy,
    SecureInferenceSession,
    VaultServer,
)
from repro.errors import DeadlineExceeded, RecoveryFailed, SealingError
from repro.obs import Telemetry
from repro.tee import FaultInjector, FaultPlan, FaultSpec, seal
from repro.tee.faults import FAULT_KILL, FAULT_MEMORY


def make_session(trained_vault, scheme="series", telemetry=None):
    run = trained_vault
    return SecureInferenceSession(
        backbone=run.backbone,
        rectifier=run.rectifiers[scheme],
        substitute_adjacency=run.substitute,
        private_adjacency=run.graph.adjacency,
        telemetry=telemetry,
    )


@pytest.fixture
def session(trained_vault):
    return make_session(trained_vault)


def skewed_snapshot() -> "object":
    """A blob sealed by a *different* enclave identity (version skew)."""
    return seal({"weights": {}, "adjacency": None}, "some-other-enclave-build")


def degrade(supervisor, session) -> None:
    """Force the supervisor into its degraded terminal state."""
    supervisor._snapshot = skewed_snapshot()
    session.enclave.kill()
    with pytest.raises(RecoveryFailed):
        supervisor.recover()
    assert supervisor.degraded


class TestSnapshotRestore:
    def test_rebuild_preserves_labels(self, session, trained_vault):
        run = trained_vault
        targets = [0, 5, 42]
        baseline, _ = session.predict_nodes(run.graph.features, targets)
        blob = session.enclave.seal_snapshot()
        old_enclave = session.enclave
        session.rebuild_enclave(blob)
        assert session.enclave is not old_enclave
        assert session.enclave.measurement == old_enclave.measurement
        restored, _ = session.predict_nodes(run.graph.features, targets)
        np.testing.assert_array_equal(restored, baseline)

    def test_restore_prewarms_plan_cache(self, session, trained_vault):
        run = trained_vault
        session.predict_nodes(run.graph.features, [7])
        session.predict_nodes(run.graph.features, [13])
        blob = session.enclave.seal_snapshot()
        session.rebuild_enclave(blob)
        # the cache-warming hints were replayed before traffic resumed
        assert len(session.enclave._plan_cache) >= 2

    def test_version_skew_raises_sealing_error(self, session, trained_vault):
        # a snapshot sealed by a differently-measured enclave build must
        # never open: restoring it is a hard SealingError, not silent reuse
        other = make_session(trained_vault, scheme="parallel")
        blob = other.enclave.seal_snapshot()
        assert other.enclave.measurement != session.enclave.measurement
        with pytest.raises(SealingError):
            session.enclave.restore_snapshot(blob)

    def test_failed_rebuild_keeps_current_enclave(self, session, trained_vault):
        run = trained_vault
        old_enclave = session.enclave
        with pytest.raises(SealingError):
            session.rebuild_enclave(skewed_snapshot())
        assert session.enclave is old_enclave
        labels, _ = session.predict_nodes(run.graph.features, [3])
        assert labels.shape == (1,)


class TestSupervisorRecovery:
    def test_mid_stream_kill_recovered_through_scheduler(self, trained_vault):
        run = trained_vault
        telemetry = Telemetry()
        session = make_session(trained_vault, telemetry=telemetry)
        server = VaultServer(session, run.graph.features)
        workload = [int(n) for n in range(0, 40)]
        baseline = server.query_batch(workload, client="baseline")

        supervisor = EnclaveSupervisor(
            session, RecoveryPolicy(snapshot_interval=8),
            telemetry=telemetry, health=server.health,
        )
        server.attach_supervisor(supervisor)
        session.attach_fault_injector(
            FaultInjector(FaultPlan((FaultSpec(FAULT_KILL, 10),)))
        )
        policy = BatchPolicy(max_batch_size=1, max_wait_ms=0.2)
        with MicroBatchScheduler(server, policy) as scheduler:
            labels = scheduler.serve(workload, client="chaos")
        np.testing.assert_array_equal(labels, baseline)
        report = supervisor.recovery_report()
        assert report["state"] == "healthy"
        assert report["restarts_total"] == 1
        assert report["batches_retried"] >= 1
        assert report["queries_degraded"] == 0
        assert report["mttr_wall_seconds"] > 0
        assert report["mttr_simulated_seconds"] > 0

    def test_memory_fault_retried_transparently(self, session, trained_vault):
        run = trained_vault
        server = VaultServer(session, run.graph.features)
        baseline = server.query_batch([4], client="baseline")
        supervisor = EnclaveSupervisor(session)
        server.attach_supervisor(supervisor)
        session.attach_fault_injector(
            FaultInjector(FaultPlan((FaultSpec(FAULT_MEMORY, 0),)))
        )
        labels = server.query_batch([4], client="faulted")
        np.testing.assert_array_equal(labels, baseline)
        assert supervisor.batches_retried == 1
        assert supervisor.restarts_total == 0  # the enclave never died

    def test_recovery_reattests_before_unseal(self, session, trained_vault):
        telemetry = Telemetry()
        session = make_session(trained_vault, telemetry=telemetry)
        supervisor = EnclaveSupervisor(session, telemetry=telemetry)
        session.enclave.kill()
        supervisor.recover()
        attested = telemetry.audit.events(kind="attestation")
        restored = [
            event for event in telemetry.audit.events(kind="provision")
            if dict(event.fields).get("stage") == "snapshot"
        ]
        assert attested and restored

    def test_version_skew_degrades_without_crash_loop(self, session):
        supervisor = EnclaveSupervisor(session)
        degrade(supervisor, session)
        assert supervisor.restarts_total == 0
        assert "unseal" in supervisor.degraded_reason
        # terminal: further recoveries fail fast instead of re-attempting
        with pytest.raises(RecoveryFailed):
            supervisor.recover()
        assert supervisor.restarts_total == 0

    def test_stale_snapshot_degrades(self, session):
        supervisor = EnclaveSupervisor(session)
        supervisor._snapshot_version -= 1  # simulate a missed re-seal
        session.enclave.kill()
        with pytest.raises(RecoveryFailed):
            supervisor.recover()
        assert supervisor.degraded
        assert "version" in supervisor.degraded_reason

    def test_deadline_budget(self, session):
        supervisor = EnclaveSupervisor(
            session, RecoveryPolicy(deadline_s=0.05)
        )
        with pytest.raises(DeadlineExceeded):
            supervisor.call_with_retry(
                lambda: None, queued_at=time.perf_counter() - 1.0
            )

    def test_snapshot_reseals_on_interval(self, session, trained_vault, monkeypatch):
        run = trained_vault
        supervisor = EnclaveSupervisor(
            session, RecoveryPolicy(snapshot_interval=2)
        )
        seals = []
        real = session.enclave.seal_snapshot
        monkeypatch.setattr(
            session.enclave, "seal_snapshot",
            lambda *a, **k: seals.append(1) or real(*a, **k),
        )
        for _ in range(4):
            supervisor.call_with_retry(
                lambda: session.predict_nodes(run.graph.features, [1])
            )
        assert len(seals) == 2  # every second successful batch

    def test_recovery_metrics_exported(self, trained_vault):
        telemetry = Telemetry()
        session = make_session(trained_vault, telemetry=telemetry)
        supervisor = EnclaveSupervisor(session, telemetry=telemetry)
        session.enclave.kill()
        supervisor.recover()
        registry = telemetry.registry
        assert registry.counter("vault_enclave_restarts_total").value() == 1
        assert registry.gauge("vault_supervisor_state").value() == 0.0
        text = telemetry.render_prometheus()
        assert "vault_recovery_seconds" in text

    def test_restart_storm_alert(self, trained_vault):
        run = trained_vault
        telemetry = Telemetry()
        session = make_session(trained_vault, telemetry=telemetry)
        server = VaultServer(session, run.graph.features)
        assert server.health is not None
        supervisor = EnclaveSupervisor(
            session, RecoveryPolicy(storm_threshold=2),
            telemetry=telemetry, health=server.health,
        )
        for _ in range(2):
            session.enclave.kill()
            supervisor.recover()
        assert server.health.alerts.is_active("enclave/restart_storm")


class TestDegradedMode:
    def test_queue_mode_fails_rectified_queries(self, session, trained_vault):
        run = trained_vault
        server = VaultServer(session, run.graph.features)
        supervisor = EnclaveSupervisor(session)  # default: queue
        server.attach_supervisor(supervisor)
        degrade(supervisor, session)
        with pytest.raises(RecoveryFailed):
            server.query_batch([0], client="late")

    def test_backbone_only_fallback_on_server(self, session, trained_vault):
        run = trained_vault
        server = VaultServer(session, run.graph.features)
        supervisor = EnclaveSupervisor(
            session, RecoveryPolicy(degraded_mode=DEGRADED_BACKBONE_ONLY)
        )
        server.attach_supervisor(supervisor)
        degrade(supervisor, session)
        labels = server.query_batch([0, 9], client="late")
        embeddings, _ = session.embed(run.graph.features)
        expected = np.argmax(embeddings[-1][[0, 9]], axis=1)
        np.testing.assert_array_equal(labels, expected)
        assert labels.dtype == np.int64  # still label-only shaped
        assert supervisor.queries_degraded == 1  # one degraded request

    def test_backbone_only_fallback_through_scheduler(self, session, trained_vault):
        run = trained_vault
        server = VaultServer(session, run.graph.features)
        supervisor = EnclaveSupervisor(
            session, RecoveryPolicy(degraded_mode=DEGRADED_BACKBONE_ONLY)
        )
        server.attach_supervisor(supervisor)
        degrade(supervisor, session)
        policy = BatchPolicy(max_batch_size=4, max_wait_ms=0.2)
        with MicroBatchScheduler(server, policy) as scheduler:
            request = scheduler.submit([3], client="late")
            labels = request.result(timeout=30.0)
        assert request.degraded  # explicitly marked non-rectified
        embeddings, _ = session.embed(run.graph.features)
        assert labels[0] == np.argmax(embeddings[-1][3])
        assert supervisor.queries_degraded >= 1
