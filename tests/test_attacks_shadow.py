"""Shadow-transfer link stealing tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import shadow_link_stealing
from repro.graph import gcn_normalize, make_sbm_graph


def _smoothed(graph, hops=2):
    norm = gcn_normalize(graph.adjacency)
    embedding = graph.features
    for _ in range(hops):
        embedding = norm @ embedding
    return embedding


@pytest.fixture(scope="module")
def shadow_and_victim():
    """Two disjoint graphs with different sizes/feature widths."""
    shadow = make_sbm_graph(130, 4, 40, 6.0, homophily=0.85, seed=1, name="shadow")
    victim = make_sbm_graph(170, 5, 56, 7.0, homophily=0.85, seed=2, name="victim")
    return shadow, victim


class TestShadowTransfer:
    def test_transfers_across_graphs(self, shadow_and_victim):
        """A classifier trained on the shadow graph attacks the victim's
        smoothed (GNN-like) embeddings well above chance."""
        shadow, victim = shadow_and_victim
        result = shadow_link_stealing(
            _smoothed(shadow), shadow.adjacency,
            _smoothed(victim), victim.adjacency,
            num_pairs=600, epochs=150, seed=0,
        )
        assert result.shadow_train_auc > 0.75  # learned something at home
        assert result.auc > 0.7  # and it transferred

    def test_fails_against_unsmoothed_noise(self, shadow_and_victim):
        """No GNN structure in the victim's surface → little transfer."""
        shadow, victim = shadow_and_victim
        noise = np.random.default_rng(0).random((170, 24))
        result = shadow_link_stealing(
            _smoothed(shadow), shadow.adjacency,
            noise, victim.adjacency,
            num_pairs=500, epochs=100, seed=0,
        )
        assert abs(result.auc - 0.5) < 0.12

    def test_different_embedding_widths_ok(self, shadow_and_victim):
        """The metric feature space decouples widths (40-d vs 8-d)."""
        shadow, victim = shadow_and_victim
        narrow = _smoothed(victim)[:, :8]
        result = shadow_link_stealing(
            _smoothed(shadow), shadow.adjacency,
            narrow, victim.adjacency,
            num_pairs=300, epochs=50, seed=0,
        )
        assert 0.0 <= result.auc <= 1.0

    def test_accepts_layer_lists(self, shadow_and_victim):
        shadow, victim = shadow_and_victim
        emb = _smoothed(victim)
        result = shadow_link_stealing(
            [_smoothed(shadow)], shadow.adjacency,
            [emb[:, :20], emb[:, 20:]], victim.adjacency,
            num_pairs=300, epochs=50, seed=0,
        )
        assert result.num_victim_pairs == 600

    def test_victim_size_mismatch_rejected(self, shadow_and_victim):
        shadow, victim = shadow_and_victim
        with pytest.raises(ValueError):
            shadow_link_stealing(
                _smoothed(shadow), shadow.adjacency,
                np.ones((10, 4)), victim.adjacency,
            )

    def test_gnnvault_resists_shadow_attack(self, trained_vault):
        """The full ladder: even a shadow attacker gets only baseline-level
        AUC from GNNVault's exposed surface."""
        run = trained_vault
        shadow = make_sbm_graph(130, 4, 48, 6.0, homophily=0.85, seed=7)
        gv = shadow_link_stealing(
            _smoothed(shadow), shadow.adjacency,
            run.backbone_embeddings(), run.graph.adjacency,
            victim="M_gv", num_pairs=500, epochs=100, seed=0,
        )
        org = shadow_link_stealing(
            _smoothed(shadow), shadow.adjacency,
            run.original_embeddings(), run.graph.adjacency,
            victim="M_org", num_pairs=500, epochs=100, seed=0,
        )
        assert org.auc > gv.auc
