"""Deployment tests: partition planning and the secure inference session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.deploy import (
    SecureInferenceSession,
    enclave_budget,
    model_compute_seconds,
    plan_deployment,
)
from repro.deploy.partition import coo_memory_bytes, enclave_budget_analytic
from repro.errors import EnclaveMemoryError
from repro.graph import CooAdjacency
from repro.models import GCNBackbone, MlpBackbone
from repro.tee import DEFAULT_COST_MODEL


@pytest.fixture
def deployment(trained_vault):
    run = trained_vault
    return SecureInferenceSession(
        backbone=run.backbone,
        rectifier=run.rectifiers["parallel"],
        substitute_adjacency=run.substitute,
        private_adjacency=run.graph.adjacency,
    )


class TestPlanDeployment:
    def test_basic_plan(self, trained_vault):
        run = trained_vault
        plan = plan_deployment(
            run.backbone,
            run.rectifiers["parallel"],
            run.substitute,
            run.graph.adjacency,
        )
        assert plan.untrusted_parameter_count == run.backbone.num_parameters()
        assert plan.trusted_parameter_count == run.rectifiers["parallel"].num_parameters()
        assert plan.private_edges == run.graph.num_edges
        assert 0 < plan.parameter_ratio

    def test_mismatched_graphs_rejected(self, trained_vault):
        run = trained_vault
        with pytest.raises(ValueError):
            plan_deployment(
                run.backbone,
                run.rectifiers["parallel"],
                CooAdjacency.empty(5),
                run.graph.adjacency,
            )

    def test_require_fit_raises_when_too_big(self, trained_vault):
        run = trained_vault
        with pytest.raises(EnclaveMemoryError):
            plan_deployment(
                run.backbone,
                run.rectifiers["parallel"],
                run.substitute,
                run.graph.adjacency,
                epc_bytes=1024,
                require_fit=True,
            )

    def test_budget_components(self, trained_vault):
        run = trained_vault
        rect = run.rectifiers["parallel"]
        budget = enclave_budget(rect, run.graph.adjacency, run.graph.num_nodes)
        parts = budget.as_dict()
        assert parts["model"] == rect.num_parameters() * 8
        assert parts["adjacency"] == run.graph.adjacency.memory_bytes()
        assert budget.total_bytes == sum(parts.values())
        assert budget.fits_epc()

    def test_series_budget_smaller_than_parallel(self, trained_vault):
        run = trained_vault
        n = run.graph.num_nodes
        parallel = enclave_budget(run.rectifiers["parallel"], run.graph.adjacency, n)
        series = enclave_budget(run.rectifiers["series"], run.graph.adjacency, n)
        assert series.total_bytes < parallel.total_bytes

    def test_analytic_matches_materialised(self, trained_vault):
        run = trained_vault
        rect = run.rectifiers["cascaded"]
        n = run.graph.num_nodes
        materialised = enclave_budget(rect, run.graph.adjacency, n)
        analytic = enclave_budget_analytic(
            rect, n, run.graph.adjacency.memory_bytes()
        )
        assert materialised == analytic

    def test_float32_halves_budget(self, trained_vault):
        run = trained_vault
        rect = run.rectifiers["parallel"]
        n = run.graph.num_nodes
        f64 = enclave_budget_analytic(rect, n, 0, float_bytes=8)
        f32 = enclave_budget_analytic(rect, n, 0, float_bytes=4)
        assert f32.total_bytes * 2 == f64.total_bytes

    def test_coo_memory_bytes_matches_class(self, trained_vault):
        adj = trained_vault.graph.adjacency
        assert coo_memory_bytes(adj.num_entries, adj.num_nodes) == adj.memory_bytes()


class TestModelComputeSeconds:
    def test_gcn_charges_spmm(self):
        gcn = GCNBackbone(16, (8, 4), seed=0)
        mlp = MlpBackbone(16, (8, 4), seed=0)
        t_gcn = model_compute_seconds(gcn, 100, 1000, DEFAULT_COST_MODEL)
        t_mlp = model_compute_seconds(mlp, 100, 1000, DEFAULT_COST_MODEL)
        assert t_gcn > t_mlp

    def test_scales_with_nodes(self):
        gcn = GCNBackbone(16, (8, 4), seed=0)
        assert model_compute_seconds(gcn, 200, 100, DEFAULT_COST_MODEL) > (
            model_compute_seconds(gcn, 100, 100, DEFAULT_COST_MODEL)
        )


class TestSecureInferenceSession:
    def test_predictions_match_rectifier(self, deployment, trained_vault):
        run = trained_vault
        labels, profile = deployment.predict(run.graph.features)
        rect = run.rectifiers["parallel"]
        embeddings = run.backbone_embeddings()
        expected = rect.predict(embeddings, run.graph.normalized_adjacency())
        np.testing.assert_array_equal(labels, expected)

    def test_label_only_output(self, deployment, trained_vault):
        labels, _ = deployment.predict(trained_vault.graph.features)
        assert labels.dtype.kind == "i"
        assert labels.ndim == 1

    def test_profile_breakdown(self, deployment, trained_vault):
        _, profile = deployment.predict(trained_vault.graph.features)
        assert profile.backbone_seconds > 0
        assert profile.transfer_seconds > 0
        assert profile.enclave_seconds > 0
        assert profile.total_seconds == pytest.approx(
            sum(profile.breakdown().values())
        )
        assert profile.payload_bytes > 0
        assert profile.peak_enclave_memory_mb > 0

    def test_wrong_feature_count_rejected(self, deployment):
        with pytest.raises(ValueError):
            deployment.predict(np.ones((3, 5)))

    def test_secure_accuracy_close_to_direct(self, deployment, trained_vault):
        """End-to-end secure path preserves the rectifier's accuracy."""
        run = trained_vault
        labels, _ = deployment.predict(run.graph.features)
        test = run.split.test
        accuracy = (labels[test] == run.graph.labels[test]).mean()
        assert accuracy == pytest.approx(run.p_rec["parallel"], abs=1e-9)

    def test_series_session_transfers_less(self, trained_vault):
        run = trained_vault
        parallel = SecureInferenceSession(
            run.backbone, run.rectifiers["parallel"], run.substitute,
            run.graph.adjacency,
        )
        series = SecureInferenceSession(
            run.backbone, run.rectifiers["series"], run.substitute,
            run.graph.adjacency,
        )
        _, p_profile = parallel.predict(run.graph.features)
        _, s_profile = series.predict(run.graph.features)
        assert s_profile.payload_bytes < p_profile.payload_bytes
        assert s_profile.transfer_seconds < p_profile.transfer_seconds

    def test_overhead_vs_baseline(self, deployment, trained_vault):
        run = trained_vault
        _, profile = deployment.predict(run.graph.features)
        baseline = deployment.unprotected_baseline_seconds(
            run.original, run.graph.adjacency.num_entries
        )
        assert profile.overhead_vs(baseline) > 0  # protection costs something

    def test_overhead_rejects_bad_baseline(self, deployment, trained_vault):
        _, profile = deployment.predict(trained_vault.graph.features)
        with pytest.raises(ValueError):
            profile.overhead_vs(0.0)

    def test_adversary_view_excludes_secrets(self, deployment):
        view = deployment.adversary_view()
        assert "backbone_state" in view
        assert "substitute_adjacency" in view
        # nothing rectifier- or private-graph-shaped leaks
        assert all(
            "rectifier" not in key and "private" not in key for key in view
        )

    def test_repeated_queries_consistent(self, deployment, trained_vault):
        a, _ = deployment.predict(trained_vault.graph.features)
        b, _ = deployment.predict(trained_vault.graph.features)
        np.testing.assert_array_equal(a, b)
