"""Planetoid file-format loader tests (using generated fixture files)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_planetoid, parse_cites, parse_content


@pytest.fixture
def planetoid_files(tmp_path):
    """A tiny 4-node citation dataset in the real distribution format."""
    content = tmp_path / "toy.content"
    content.write_text(
        "paper_a\t1\t0\t1\tml\n"
        "paper_b\t0\t1\t0\tdb\n"
        "paper_c\t1\t1\t0\tml\n"
        "paper_d\t0\t0\t1\tdb\n"
    )
    cites = tmp_path / "toy.cites"
    cites.write_text(
        "paper_a\tpaper_b\n"
        "paper_b\tpaper_c\n"
        "paper_c\tpaper_d\n"
        "paper_x\tpaper_a\n"  # unknown id, must be skipped
    )
    return content, cites


class TestParseContent:
    def test_parses_features_and_labels(self, planetoid_files):
        content, _ = planetoid_files
        ids, features, labels = parse_content(content)
        assert ids == ["paper_a", "paper_b", "paper_c", "paper_d"]
        assert features.shape == (4, 3)
        np.testing.assert_array_equal(features[0], [1.0, 0.0, 1.0])
        assert labels == ["ml", "db", "ml", "db"]

    def test_rejects_short_lines(self, tmp_path):
        bad = tmp_path / "bad.content"
        bad.write_text("only_id\tml\n")
        with pytest.raises(ValueError):
            parse_content(bad)

    def test_rejects_ragged_rows(self, tmp_path):
        bad = tmp_path / "bad.content"
        bad.write_text("a\t1\t0\tml\nb\t1\tml\n")
        with pytest.raises(ValueError):
            parse_content(bad)

    def test_rejects_duplicates(self, tmp_path):
        bad = tmp_path / "bad.content"
        bad.write_text("a\t1\tml\na\t0\tdb\n")
        with pytest.raises(ValueError):
            parse_content(bad)

    def test_rejects_empty(self, tmp_path):
        empty = tmp_path / "empty.content"
        empty.write_text("")
        with pytest.raises(ValueError):
            parse_content(empty)


class TestParseCites:
    def test_skips_unknown_ids(self, planetoid_files):
        content, cites = planetoid_files
        ids, _, _ = parse_content(content)
        index = {paper: i for i, paper in enumerate(ids)}
        edges, skipped = parse_cites(cites, index)
        assert edges.shape == (3, 2)
        assert skipped == 1

    def test_rejects_malformed_lines(self, tmp_path):
        bad = tmp_path / "bad.cites"
        bad.write_text("a b c\n")
        with pytest.raises(ValueError):
            parse_cites(bad, {"a": 0, "b": 1, "c": 2})

    def test_blank_lines_ignored(self, tmp_path):
        cites = tmp_path / "ok.cites"
        cites.write_text("\na b\n\n")
        edges, skipped = parse_cites(cites, {"a": 0, "b": 1})
        assert edges.shape == (1, 2)


class TestLoadPlanetoid:
    def test_full_graph(self, planetoid_files):
        content, cites = planetoid_files
        graph, report = load_planetoid(content, cites, name="toy")
        assert graph.name == "toy"
        assert graph.num_nodes == 4
        assert graph.num_features == 3
        assert graph.num_classes == 2
        assert graph.num_edges == 3
        assert report.num_skipped_citations == 1

    def test_labels_deterministic(self, planetoid_files):
        content, cites = planetoid_files
        graph, _ = load_planetoid(content, cites)
        # sorted label names: db -> 0, ml -> 1
        np.testing.assert_array_equal(graph.labels, [1, 0, 1, 0])

    def test_loaded_graph_runs_through_pipeline(self, planetoid_files):
        """The real-format loader plugs straight into GNNVault."""
        from repro.experiments import run_gnnvault
        from repro.models import ModelPreset
        from repro.training import TrainConfig
        from repro.graph import make_sbm_graph

        # a slightly bigger generated dataset written in planetoid format
        source = make_sbm_graph(40, 2, 12, 4.0, seed=0)
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            content = Path(tmp) / "gen.content"
            cites = Path(tmp) / "gen.cites"
            with open(content, "w") as f:
                for i in range(40):
                    words = "\t".join(str(int(v)) for v in source.features[i])
                    f.write(f"n{i}\t{words}\tc{source.labels[i]}\n")
            with open(cites, "w") as f:
                for u, v in source.adjacency.edge_set():
                    f.write(f"n{u}\tn{v}\n")
            graph, _ = load_planetoid(content, cites, name="generated")

        run = run_gnnvault(
            graph=graph,
            schemes=("series",),
            preset=ModelPreset("toy", (8, 4), (8, 4)),
            train_config=TrainConfig(epochs=20, patience=10),
            train_original=False,
        )
        assert 0.0 <= run.p_rec["series"] <= 1.0
