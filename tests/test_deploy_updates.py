"""Online graph-update tests: new nodes arriving at a live vault."""

from __future__ import annotations

import numpy as np
import pytest

from repro.deploy import (
    GraphUpdate,
    SecureInferenceSession,
    extend_adjacency,
    seal_graph_update,
)
from repro.errors import SealingError, SecurityViolation
from repro.graph import CooAdjacency
from repro.tee import seal


@pytest.fixture
def session(trained_vault):
    run = trained_vault
    return SecureInferenceSession(
        run.backbone,
        run.rectifiers["parallel"],
        run.substitute,
        run.graph.adjacency,
    ), run


class TestExtendAdjacency:
    def test_appends_node_and_edges(self):
        adj = CooAdjacency.from_edge_list(3, [(0, 1)])
        extended = extend_adjacency(adj, [0, 2])
        assert extended.num_nodes == 4
        assert extended.edge_set() == {(0, 1), (0, 3), (2, 3)}
        assert extended.is_symmetric()

    def test_isolated_new_node(self):
        adj = CooAdjacency.from_edge_list(3, [(0, 1)])
        extended = extend_adjacency(adj, [])
        assert extended.num_nodes == 4
        assert extended.num_edges == 1

    def test_deduplicates_neighbours(self):
        adj = CooAdjacency.empty(2)
        extended = extend_adjacency(adj, [0, 0, 1])
        assert extended.edge_set() == {(0, 2), (1, 2)}

    def test_out_of_range_neighbour(self):
        adj = CooAdjacency.empty(2)
        with pytest.raises(ValueError):
            extend_adjacency(adj, [5])

    def test_original_untouched(self):
        adj = CooAdjacency.from_edge_list(3, [(0, 1)])
        extend_adjacency(adj, [2])
        assert adj.num_nodes == 3


class TestGraphUpdate:
    def test_duplicate_neighbours_rejected(self):
        with pytest.raises(ValueError):
            GraphUpdate(neighbours=(1, 1))

    def test_seal_binds_to_rectifier(self, trained_vault):
        run = trained_vault
        update = GraphUpdate(neighbours=(0, 1))
        blob = seal_graph_update(update, run.rectifiers["parallel"])
        # sealed for the parallel rectifier's enclave; series differs
        from repro.tee import rectifier_measurement, unseal

        assert unseal(
            blob, rectifier_measurement(run.rectifiers["parallel"])
        ).neighbours == (0, 1)
        with pytest.raises(SealingError):
            unseal(blob, rectifier_measurement(run.rectifiers["series"]))


class TestSessionAddNode:
    def _new_node_features(self, run, like_class: int):
        """Features resembling an existing class (mean of its members)."""
        members = run.graph.labels == like_class
        return run.graph.features[members].mean(axis=0)

    def test_add_and_classify_new_node(self, session):
        vault_session, run = session
        graph = run.graph
        target_class = 0
        members = np.flatnonzero(graph.labels == target_class)[:4]

        update = GraphUpdate(neighbours=tuple(int(m) for m in members))
        blob = seal_graph_update(update, run.rectifiers["parallel"])
        new_id = vault_session.add_node(
            substitute_neighbours=members[:2], sealed_update=blob
        )
        assert new_id == graph.num_nodes

        new_features = np.vstack(
            [graph.features, self._new_node_features(run, target_class)]
        )
        labels, _ = vault_session.predict_nodes(new_features, [new_id])
        # Homophilous neighbourhood + class-typical features → the vault
        # classifies the new node into its class without retraining.
        assert labels[0] == target_class

    def test_full_graph_predict_covers_new_node(self, session):
        vault_session, run = session
        graph = run.graph
        update = GraphUpdate(neighbours=(0, 1))
        blob = seal_graph_update(update, run.rectifiers["parallel"])
        vault_session.add_node(substitute_neighbours=[0], sealed_update=blob)
        new_features = np.vstack([graph.features, graph.features[0]])
        labels, _ = vault_session.predict(new_features)
        assert labels.shape == (graph.num_nodes + 1,)

    def test_old_feature_matrix_rejected_after_update(self, session):
        vault_session, run = session
        update = GraphUpdate(neighbours=(0,))
        blob = seal_graph_update(update, run.rectifiers["parallel"])
        vault_session.add_node(substitute_neighbours=[0], sealed_update=blob)
        with pytest.raises(ValueError):
            vault_session.predict(run.graph.features)  # stale size

    def test_update_requires_provisioned_graph(self, trained_vault):
        from repro.tee import RectifierEnclave, seal_rectifier_weights

        run = trained_vault
        rect = run.rectifiers["parallel"]
        enclave = RectifierEnclave(rect)
        enclave.provision_weights(seal_rectifier_weights(rect))
        blob = seal_graph_update(GraphUpdate(neighbours=(0,)), rect)
        with pytest.raises(SecurityViolation):
            enclave.provision_graph_update(blob)

    def test_bogus_update_blob_rejected(self, session):
        vault_session, run = session
        bogus = seal("not an update", vault_session.enclave.measurement)
        with pytest.raises(SecurityViolation):
            vault_session.enclave.provision_graph_update(bogus)

    def test_enclave_memory_rebooked(self, session):
        vault_session, run = session
        before = vault_session.enclave.memory_report()["graph/adjacency"]
        update = GraphUpdate(neighbours=(0, 1, 2))
        blob = seal_graph_update(update, run.rectifiers["parallel"])
        vault_session.add_node(substitute_neighbours=[0], sealed_update=blob)
        after = vault_session.enclave.memory_report()["graph/adjacency"]
        assert after > before
