"""Serving fast-path tests: caches must be exact, observable, and honest.

Covers the three cache layers (memoised adjacency derivations, the
VaultServer backbone-embedding cache, the enclave receptive-field plan
cache), their invalidation on online graph updates, and a lightweight
perf smoke so a regression that silently disables the fast path fails
tier-1.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.deploy import (
    GraphUpdate,
    SecureInferenceSession,
    VaultServer,
    seal_graph_update,
    zipf_workload,
)
from repro.tee import EnclaveConfig


@pytest.fixture
def make_session(trained_vault):
    def factory(**kwargs):
        run = trained_vault
        return SecureInferenceSession(
            run.backbone,
            run.rectifiers["parallel"],
            run.substitute,
            run.graph.adjacency,
            **kwargs,
        )

    return factory


class TestEmbeddingCache:
    def test_cached_labels_match_uncached(self, trained_vault, make_session):
        run = trained_vault
        workload = zipf_workload(run.graph.num_nodes, 40, seed=2)
        cached = VaultServer(make_session(), run.graph.features)
        uncached = VaultServer(
            make_session(enclave_config=EnclaveConfig(plan_cache_capacity=0)),
            run.graph.features,
            cache_embeddings=False,
        )
        np.testing.assert_array_equal(
            cached.serve(workload, batch_size=4),
            uncached.serve(workload, batch_size=4),
        )

    def test_stats_record_hits_and_misses(self, trained_vault, make_session):
        run = trained_vault
        server = VaultServer(make_session(), run.graph.features)
        server.serve([0, 1, 2, 3], batch_size=1)
        assert server.stats.embedding_cache_misses == 1
        assert server.stats.embedding_cache_hits == 3

    def test_uncached_server_never_hits(self, trained_vault, make_session):
        run = trained_vault
        server = VaultServer(
            make_session(), run.graph.features, cache_embeddings=False
        )
        server.serve([0, 1, 2], batch_size=1)
        assert server.stats.embedding_cache_hits == 0
        assert server.stats.embedding_cache_misses == 3

    def test_warm_queries_skip_backbone_cost(self, trained_vault, make_session):
        run = trained_vault
        session = make_session()
        server = VaultServer(session, run.graph.features)
        server.query(0)  # cold: pays the backbone
        cold_seconds = server.stats.total_seconds
        _, direct = session.predict_nodes(run.graph.features, [0])
        assert direct.backbone_seconds > 0
        assert cold_seconds == pytest.approx(direct.total_seconds)
        server.query(0)  # warm: same version, no backbone charge
        warm_seconds = server.stats.total_seconds - cold_seconds
        assert warm_seconds == pytest.approx(
            direct.total_seconds - direct.backbone_seconds
        )


class TestStaleCacheGuard:
    def _grow(self, run, server):
        """Add one class-0-like node through the serving layer."""
        members = np.flatnonzero(run.graph.labels == 0)[:4]
        update = GraphUpdate(neighbours=tuple(int(m) for m in members))
        blob = seal_graph_update(update, run.rectifiers["parallel"])
        row = run.graph.features[members].mean(axis=0)
        return server.add_node(row, members[:2], blob), np.vstack(
            [run.graph.features, row]
        )

    def test_add_node_bumps_feature_version(self, trained_vault, make_session):
        run = trained_vault
        session = make_session()
        server = VaultServer(session, run.graph.features)
        version = session.feature_version
        self._grow(run, server)
        assert session.feature_version == version + 1

    def test_post_update_queries_are_correct(self, trained_vault, make_session):
        run = trained_vault
        session = make_session()
        server = VaultServer(session, run.graph.features)
        workload = list(range(10))
        server.serve(workload)  # warm every cache on the old graph version
        new_id, new_features = self._grow(run, server)

        # The served answers must match a direct (cache-free) inference
        # over the *grown* deployment — a stale embedding or plan cache
        # would answer from the old graph.
        direct, _ = session.predict_nodes(new_features, [new_id, *workload])
        assert server.query(new_id) == direct[0]
        np.testing.assert_array_equal(server.serve(workload), direct[1:])
        assert server.query(new_id) == 0  # class-typical node → class 0
        # Exactly one re-embed after the update, then cache hits again.
        assert server.stats.embedding_cache_misses == 2

    def test_mismatched_feature_row_rejected(self, trained_vault, make_session):
        run = trained_vault
        server = VaultServer(make_session(), run.graph.features)
        blob = seal_graph_update(
            GraphUpdate(neighbours=(0,)), run.rectifiers["parallel"]
        )
        with pytest.raises(ValueError):
            server.add_node(np.ones(3), [0], blob)


class TestEnclavePlanCache:
    def test_hits_on_repeated_targets(self, trained_vault, make_session):
        run = trained_vault
        session = make_session()
        server = VaultServer(session, run.graph.features)
        server.serve([5, 5, 5, 9, 5], batch_size=1)
        stats = session.enclave.plan_cache_stats()
        assert stats["misses"] == 2  # nodes 5 and 9
        assert stats["hits"] == 3

    def test_plans_are_charged_to_enclave_memory(self, trained_vault, make_session):
        run = trained_vault
        session = make_session()
        VaultServer(session, run.graph.features).serve([1, 2, 3], batch_size=1)
        report = session.enclave.memory_report()
        plan_bytes = [v for k, v in report.items() if k.startswith("plancache/")]
        assert len(plan_bytes) == 3
        assert all(b > 0 for b in plan_bytes)

    def test_lru_eviction_bounds_memory(self, trained_vault, make_session):
        run = trained_vault
        session = make_session(
            enclave_config=EnclaveConfig(plan_cache_capacity=2)
        )
        server = VaultServer(session, run.graph.features)
        server.serve([0, 1, 2, 3], batch_size=1)
        stats = session.enclave.plan_cache_stats()
        assert stats["entries"] == 2
        report = session.enclave.memory_report()
        assert sum(k.startswith("plancache/") for k in report) == 2
        # 0 and 1 were evicted (LRU); 2 and 3 are resident.
        server.query(3)
        assert session.enclave.plan_cache_stats()["hits"] == 1
        server.query(0)
        assert session.enclave.plan_cache_stats()["misses"] == 5

    def test_graph_update_invalidates_plans(self, trained_vault, make_session):
        run = trained_vault
        session = make_session()
        server = VaultServer(session, run.graph.features)
        server.serve([0, 1], batch_size=1)
        assert session.enclave.plan_cache_stats()["entries"] == 2
        blob = seal_graph_update(
            GraphUpdate(neighbours=(0, 1)), run.rectifiers["parallel"]
        )
        server.add_node(run.graph.features[0], [0], blob)
        assert session.enclave.plan_cache_stats()["entries"] == 0
        report = session.enclave.memory_report()
        assert not any(k.startswith("plancache/") for k in report)

    def test_disabled_cache_stays_empty(self, trained_vault, make_session):
        run = trained_vault
        session = make_session(
            enclave_config=EnclaveConfig(plan_cache_capacity=0)
        )
        VaultServer(session, run.graph.features).serve([0, 1, 0], batch_size=1)
        stats = session.enclave.plan_cache_stats()
        assert stats["entries"] == 0
        assert stats["hits"] == 0


class TestPerfSmoke:
    def test_warm_serving_beats_uncached(self, trained_vault, make_session):
        """Tier-1 guard: the fast path must stay faster than the slow path.

        Wall-clock comparison with a generous margin (strictly faster, not
        the benchmark's 10x bar) so CI noise cannot flip it while a real
        regression — e.g. the embedding cache silently missing — still
        fails.
        """
        run = trained_vault
        workload = zipf_workload(run.graph.num_nodes, 200, alpha=1.3, seed=4)

        uncached = VaultServer(
            make_session(enclave_config=EnclaveConfig(plan_cache_capacity=0)),
            run.graph.features,
            cache_embeddings=False,
        )
        start = time.perf_counter()
        slow_labels = uncached.serve(workload, batch_size=1)
        slow_seconds = time.perf_counter() - start

        cached = VaultServer(make_session(), run.graph.features)
        cached.serve(workload, batch_size=1)  # warm-up pass
        start = time.perf_counter()
        warm_labels = cached.serve(workload, batch_size=1)
        warm_seconds = time.perf_counter() - start

        np.testing.assert_array_equal(warm_labels, slow_labels)
        assert warm_seconds < slow_seconds, (
            f"warm fast path ({warm_seconds:.3f}s) not faster than uncached "
            f"path ({slow_seconds:.3f}s) on a 200-query Zipf stream"
        )
