"""Span tracer and trust-boundary redaction unit tests."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs import (
    NullSpan,
    RedactedSpan,
    Telemetry,
    TelemetryLeak,
    Tracer,
    spans_to_jsonl,
    write_trace_jsonl,
)


class TestSpanNesting:
    def test_children_nest_under_parent(self):
        tracer = Tracer()
        with tracer.span("query"):
            with tracer.span("backbone"):
                pass
            with tracer.span("ecall"):
                with tracer.span("transfer"):
                    pass
        root = tracer.last()
        assert root.name == "query"
        assert [c.name for c in root.children] == ["backbone", "ecall"]
        assert root.children[1].children[0].name == "transfer"

    def test_explicit_seconds_override_wall_clock(self):
        tracer = Tracer()
        with tracer.span("stage") as span:
            span.set_seconds(1.5)
        assert tracer.last().seconds == 1.5
        assert tracer.last().wall_seconds < 1.0

    def test_wall_clock_default(self):
        tracer = Tracer()
        with tracer.span("stage"):
            pass
        assert tracer.last().seconds >= 0.0

    def test_stages_flatten_and_accumulate(self):
        tracer = Tracer()
        with tracer.span("query"):
            for _ in range(2):
                with tracer.span("ecall") as span:
                    span.set_seconds(0.25)
        assert tracer.last().stages() == {"ecall": 0.5}

    def test_find_descendant(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        assert tracer.last().find("c").name == "c"
        assert tracer.last().find("missing") is None

    def test_error_annotated(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.last().attributes["error"] == "RuntimeError"

    def test_bounded_trace_buffer(self):
        tracer = Tracer(max_traces=3)
        for index in range(10):
            with tracer.span(f"q{index}"):
                pass
        assert [s.name for s in tracer.roots()] == ["q7", "q8", "q9"]

    def test_disabled_tracer_hands_out_null_spans(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("query")
        assert isinstance(span, NullSpan)
        with span as active:
            active.set_attribute("k", 1).set_seconds(2.0)
        assert tracer.roots() == []


class TestSerialisation:
    def test_jsonl_one_line_per_root(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("query") as span:
                span.set_attribute("batch_size", 1)
        lines = spans_to_jsonl(tracer).strip().splitlines()
        assert len(lines) == 3
        decoded = json.loads(lines[0])
        assert decoded["name"] == "query"
        assert decoded["attributes"] == {"batch_size": 1}

    def test_write_trace_jsonl(self, tmp_path):
        tracer = Tracer()
        with tracer.span("query"):
            with tracer.span("ecall") as span:
                span.set_seconds(0.1)
        path = write_trace_jsonl(tracer, tmp_path / "traces" / "t.jsonl")
        decoded = json.loads(path.read_text().strip())
        assert decoded["children"][0]["seconds"] == 0.1


class TestRedactedSpan:
    def test_accepts_scalar_aggregates(self):
        span = RedactedSpan("ecall")
        span.set_attribute("payload_bytes", 1024)
        span.set_attribute("swapped_pages", np.int64(3))
        span.set_attribute("cache_hit_ratio", 0.75)
        assert span.attributes["payload_bytes"] == 1024

    @pytest.mark.parametrize("key", [
        "node_ids", "edge_count", "target_bytes", "neighbour_count",
        "embedding_bytes", "row_count", "label_count", "graph_bytes",
    ])
    def test_rejects_private_vocabulary(self, key):
        with pytest.raises(TelemetryLeak):
            RedactedSpan("ecall").set_attribute(key, 1)

    def test_rejects_non_aggregate_keys(self):
        with pytest.raises(TelemetryLeak):
            RedactedSpan("ecall").set_attribute("payload", 1)

    @pytest.mark.parametrize("value", [
        [1, 2, 3],
        (4, 5),
        {"a": 1},
        "0,1,2",
        np.arange(4),
        np.random.default_rng(0).random((2, 2)),
    ])
    def test_rejects_payload_values(self, value):
        with pytest.raises(TelemetryLeak):
            RedactedSpan("ecall").set_attribute("payload_bytes", value)

    def test_rejects_private_span_names(self):
        with pytest.raises(TelemetryLeak):
            RedactedSpan("node_visit")

    def test_children_of_redacted_span_are_redacted(self):
        tracer = Tracer()
        with tracer.span("ecall", span_class=RedactedSpan, origin="enclave"):
            # an "innocent" plain span requested inside the enclave...
            with tracer.span("helper") as child:
                # ...is forced to the redacted type: no laundering.
                assert isinstance(child, RedactedSpan)
                assert child.origin == "enclave"
                with pytest.raises(TelemetryLeak):
                    child.set_attribute("touched_nodes", [1, 2])


class TestEnclaveTelemetryGate:
    @pytest.fixture
    def telemetry(self):
        return Telemetry()

    def test_spans_are_redacted_and_enclave_origin(self, telemetry):
        gate = telemetry.enclave_gate()
        with gate.span("ecall") as span:
            assert isinstance(span, RedactedSpan)
        assert telemetry.tracer.last().origin == "enclave"

    def test_metrics_forced_into_enclave_namespace(self, telemetry):
        gate = telemetry.enclave_gate()
        with pytest.raises(TelemetryLeak):
            gate.inc("queries_total")
        gate.inc("enclave_ecalls_total")
        assert telemetry.registry.get("enclave_ecalls_total").value() == 1

    def test_metric_names_must_be_aggregates(self, telemetry):
        gate = telemetry.enclave_gate()
        with pytest.raises(TelemetryLeak):
            gate.inc("enclave_node_total")  # private vocabulary
        with pytest.raises(TelemetryLeak):
            gate.inc("enclave_stuff")  # no aggregate suffix

    def test_label_values_must_be_enum_words(self, telemetry):
        gate = telemetry.enclave_gate()
        gate.inc("enclave_events_total", result="hit")
        with pytest.raises(TelemetryLeak):
            gate.inc("enclave_events_total", result="17")  # an id in disguise
        with pytest.raises(TelemetryLeak):
            gate.inc("enclave_events_total", node="x")  # private label key

    def test_observe_and_gauge_paths(self, telemetry):
        gate = telemetry.enclave_gate()
        gate.observe_seconds("enclave_ecall_seconds", 0.01)
        gate.observe_bytes("enclave_payload_hist_bytes", 4096)
        gate.gauge_max("enclave_peak_bytes", 100)
        gate.gauge_max("enclave_peak_bytes", 50)
        assert telemetry.registry.get("enclave_peak_bytes").value() == 100
        assert telemetry.registry.get("enclave_ecall_seconds").count() == 1

    def test_disabled_telemetry_has_no_gate(self):
        assert Telemetry(enabled=False).enclave_gate() is None

    def test_enclave_rejects_raw_telemetry_objects(self, telemetry):
        from repro.errors import SecurityViolation
        from repro.models import make_rectifier
        from repro.tee import RectifierEnclave

        rectifier = make_rectifier("series", (8, 4, 2), (8, 4, 2), seed=0)
        enclave = RectifierEnclave(rectifier)
        with pytest.raises(SecurityViolation):
            enclave.attach_telemetry(telemetry)  # hub, not a gate
        enclave.attach_telemetry(telemetry.enclave_gate())
        enclave.attach_telemetry(None)
