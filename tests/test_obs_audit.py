"""Audit log: append-only stream, origin rules, JSONL round-trip."""

from __future__ import annotations

import json

import pytest

from repro.errors import SecurityViolation
from repro.obs import AuditLog, Telemetry, parse_audit_jsonl
from repro.obs.audit import ENCLAVE_AUDIT_KINDS, UNTRUSTED_AUDIT_KINDS


class TestAppend:
    def test_sequence_numbers_are_monotonic(self):
        log = AuditLog()
        seqs = [log.append("query_served", time=float(i)) for i in range(5)]
        assert seqs == [0, 1, 2, 3, 4]
        assert [event.seq for event in log] == seqs

    def test_fields_are_preserved(self):
        log = AuditLog()
        log.append("model_update", time=1.5, stage="backbone", accuracy=0.8)
        event = log.events(kind="model_update")[0]
        assert event["stage"] == "backbone"
        assert event["accuracy"] == 0.8
        assert event.get("missing", "d") == "d"
        with pytest.raises(KeyError):
            event["missing"]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown audit event kind"):
            AuditLog().append("made_up_kind")

    def test_enclave_kind_rejected_at_the_public_door(self):
        with pytest.raises(SecurityViolation, match="EnclaveTelemetryGate"):
            AuditLog().append("provision")

    def test_reserved_field_keys_rejected(self):
        log = AuditLog()
        # "kind"/"time" bind to append()'s own parameters; "seq"/"origin"
        # would silently shadow the envelope, so they must be refused.
        for key in ("seq", "origin"):
            with pytest.raises(ValueError, match="envelope"):
                log.append("query_served", **{key: 1})

    def test_non_scalar_fields_rejected(self):
        with pytest.raises(ValueError, match="JSON scalar"):
            AuditLog().append("query_served", payload=[1, 2, 3])

    def test_untrusted_and_enclave_vocabularies_overlap_sanely(self):
        # attestation / graph_update / cache_invalidation legitimately have
        # both a host-side and an enclave-side view.
        assert "provision" not in UNTRUSTED_AUDIT_KINDS
        assert "query_served" not in ENCLAVE_AUDIT_KINDS


class TestBounding:
    def test_capacity_drops_oldest(self):
        log = AuditLog(capacity=3)
        for i in range(5):
            log.append("query_served", batch_count=i)
        assert len(log) == 3
        assert log.dropped == 2
        assert log.total_appended == 5
        assert [event["batch_count"] for event in log] == [2, 3, 4]
        # sequence numbers keep counting across drops
        assert [event.seq for event in log] == [2, 3, 4]

    def test_tail(self):
        log = AuditLog()
        for i in range(10):
            log.append("query_served", batch_count=i)
        assert [e["batch_count"] for e in log.tail(3)] == [7, 8, 9]
        assert log.tail(0) == []

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            AuditLog(capacity=0)


class TestJsonl:
    def test_round_trip(self):
        log = AuditLog()
        log.append("query_served", time=0.25, client="default", batch_count=2)
        log.append("alert_fired", time=1.0, alert_key="slo/x", severity="critical")
        parsed = parse_audit_jsonl(log.to_jsonl())
        assert [e.kind for e in parsed] == ["query_served", "alert_fired"]
        assert parsed[0]["client"] == "default"
        assert parsed[0].time == 0.25
        assert parsed[1]["alert_key"] == "slo/x"

    def test_each_line_is_valid_json_with_envelope(self):
        log = AuditLog()
        log.append("graph_update", version=3)
        line = log.to_jsonl().strip()
        raw = json.loads(line)
        assert set(raw) >= {"seq", "time", "kind", "origin"}
        assert raw["origin"] == "untrusted"

    def test_write_creates_parents(self, tmp_path):
        log = AuditLog()
        log.append("query_served")
        path = log.write(tmp_path / "deep" / "audit.jsonl")
        assert path.exists()
        assert parse_audit_jsonl(path.read_text())[0].kind == "query_served"

    def test_parse_skips_blank_lines(self):
        log = AuditLog()
        log.append("query_served")
        text = "\n" + log.to_jsonl() + "\n\n"
        assert len(parse_audit_jsonl(text)) == 1


class TestTelemetryIntegration:
    def test_telemetry_hub_carries_a_live_audit_log(self):
        telemetry = Telemetry()
        telemetry.audit.append("query_served", batch_count=1)
        assert "query_served" in telemetry.audit_jsonl()

    def test_audit_log_stays_live_when_tracing_disabled(self):
        telemetry = Telemetry(enabled=False)
        telemetry.audit.append("security_alert", alert_key="k")
        assert len(telemetry.audit) == 1


class TestSegmentRotation:
    """Size-based rotation/retention for the durable audit stream."""

    def _writer(self, tmp_path, **kw):
        from repro.obs import AuditSegmentWriter

        return AuditSegmentWriter(tmp_path, **kw)

    def test_rotates_at_size_and_bounds_disk(self, tmp_path):
        writer = self._writer(tmp_path, max_bytes=200, max_segments=3)
        log = AuditLog(sink=writer)
        for i in range(50):
            log.append("query_served", time=float(i), batch_count=i)
        assert writer.rotations > 0
        assert len(writer.segments()) <= 3
        assert writer.total_bytes() <= 3 * 200
        assert writer.segments_deleted > 0

    def test_retained_segments_round_trip_as_jsonl(self, tmp_path):
        writer = self._writer(tmp_path, max_bytes=300, max_segments=4)
        log = AuditLog(sink=writer)
        for i in range(30):
            log.append("query_served", time=float(i), batch_count=i)
        events = parse_audit_jsonl(writer.read_text())
        assert events
        # oldest-first concatenation: sequence numbers stay monotonic
        seqs = [event.seq for event in events]
        assert seqs == sorted(seqs)
        assert events[-1].seq == 29
        assert events[-1]["batch_count"] == 29

    def test_sink_outlives_in_memory_bound(self, tmp_path):
        writer = self._writer(tmp_path, max_bytes=1 << 20)
        log = AuditLog(capacity=4, sink=writer)
        for i in range(12):
            log.append("query_served", batch_count=i)
        assert len(log) == 4 and log.dropped == 8
        assert len(parse_audit_jsonl(writer.read_text())) == 12

    def test_numbering_resumes_across_restarts(self, tmp_path):
        writer = self._writer(tmp_path, max_bytes=80, max_segments=8)
        log = AuditLog(sink=writer)
        for i in range(6):
            log.append("query_served", batch_count=i)
        first_gen = [path.name for path in writer.segments()]
        # a fresh writer on the same directory appends after, not over
        writer2 = self._writer(tmp_path, max_bytes=80, max_segments=8)
        log2 = AuditLog(sink=writer2)
        log2.append("model_update", batch_count=99)
        names = [path.name for path in writer2.segments()]
        assert set(first_gen) <= set(names)
        assert len(names) == len(first_gen) + 1

    def test_oversized_line_gets_its_own_segment(self, tmp_path):
        writer = self._writer(tmp_path, max_bytes=64, max_segments=8)
        log = AuditLog(sink=writer)
        log.append("query_served", note="x" * 200)
        log.append("query_served", batch_count=1)
        assert len(writer.segments()) == 2
        assert len(parse_audit_jsonl(writer.read_text())) == 2

    def test_enclave_events_stream_through_the_sink(self, tmp_path):
        writer = self._writer(tmp_path)
        telemetry = Telemetry()
        telemetry.audit.sink = writer
        gate = telemetry.enclave_gate()
        gate.audit("attestation", result="accepted")
        events = parse_audit_jsonl(writer.read_text())
        assert events[0].origin == "enclave"

    def test_rejects_degenerate_bounds(self, tmp_path):
        with pytest.raises(ValueError):
            self._writer(tmp_path, max_bytes=0)
        with pytest.raises(ValueError):
            self._writer(tmp_path, max_segments=0)
