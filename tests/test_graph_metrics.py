"""Graph metric tests: homophily, degree, overlap."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    CooAdjacency,
    average_degree,
    degree_histogram,
    edge_homophily,
    edge_overlap,
)


class TestEdgeHomophily:
    def test_all_same_class(self):
        adj = CooAdjacency.from_edge_list(4, [(0, 1), (2, 3)])
        assert edge_homophily(adj, np.zeros(4, dtype=int)) == 1.0

    def test_all_cross_class(self):
        adj = CooAdjacency.from_edge_list(4, [(0, 1), (2, 3)])
        assert edge_homophily(adj, np.array([0, 1, 0, 1])) == 0.0

    def test_mixed(self):
        adj = CooAdjacency.from_edge_list(4, [(0, 1), (0, 2)])
        labels = np.array([0, 0, 1, 1])
        assert edge_homophily(adj, labels) == pytest.approx(0.5)

    def test_empty_graph(self):
        assert edge_homophily(CooAdjacency.empty(3), np.zeros(3, dtype=int)) == 0.0


class TestAverageDegree:
    def test_value(self):
        adj = CooAdjacency.from_edge_list(4, [(0, 1), (1, 2)])
        # 4 directed entries over 4 nodes
        assert average_degree(adj) == pytest.approx(1.0)

    def test_empty(self):
        assert average_degree(CooAdjacency.empty(0)) == 0.0


class TestEdgeOverlap:
    def test_identical(self):
        adj = CooAdjacency.from_edge_list(4, [(0, 1), (1, 2)])
        assert edge_overlap(adj, adj) == 1.0

    def test_disjoint(self):
        a = CooAdjacency.from_edge_list(4, [(0, 1)])
        b = CooAdjacency.from_edge_list(4, [(2, 3)])
        assert edge_overlap(a, b) == 0.0

    def test_partial(self):
        a = CooAdjacency.from_edge_list(4, [(0, 1), (1, 2)])
        b = CooAdjacency.from_edge_list(4, [(0, 1), (2, 3)])
        assert edge_overlap(a, b) == pytest.approx(1.0 / 3.0)

    def test_both_empty(self):
        assert edge_overlap(CooAdjacency.empty(3), CooAdjacency.empty(3)) == 0.0


class TestDegreeHistogram:
    def test_counts_all_nodes(self):
        adj = CooAdjacency.from_edge_list(5, [(0, 1), (0, 2), (0, 3)])
        hist = degree_histogram(adj, num_bins=4)
        assert hist.sum() == 5
