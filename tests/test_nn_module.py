"""Module/Parameter machinery: discovery, modes, state dicts, freezing."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


class TwoLayer(nn.Module):
    def __init__(self, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.first = nn.Linear(4, 3, rng=rng)
        self.second = nn.Linear(3, 2, rng=rng)
        self.scale = nn.Parameter(np.ones(1), name="scale")

    def forward(self, x):
        return self.second(nn.relu(self.first(x))) * self.scale


class TestDiscovery:
    def test_parameters_found_recursively(self):
        model = TwoLayer()
        # 2 weights + 2 biases + scale
        assert len(model.parameters()) == 5

    def test_named_parameters_have_dotted_names(self):
        names = dict(TwoLayer().named_parameters())
        assert "first.weight" in names
        assert "second.bias" in names
        assert "scale" in names

    def test_num_parameters(self):
        model = TwoLayer()
        assert model.num_parameters() == 4 * 3 + 3 + 3 * 2 + 2 + 1

    def test_modules_iteration(self):
        model = TwoLayer()
        kinds = [type(m).__name__ for m in model.modules()]
        assert kinds.count("Linear") == 2

    def test_module_list(self):
        layers = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(layers) == 2
        assert len(list(layers)) == 2
        assert layers[1] is list(layers)[1]
        # parameters of children are discovered
        assert len(layers.parameters()) == 4


class TestModes:
    def test_train_eval_propagate(self):
        model = TwoLayer()
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self):
        model = TwoLayer()
        out = model(nn.Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestFreezing:
    def test_freeze_blocks_gradients(self):
        model = TwoLayer()
        model.freeze()
        out = model(nn.Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert all(p.grad is None for p in model.parameters())

    def test_unfreeze_restores_gradients(self):
        model = TwoLayer()
        model.freeze().unfreeze()
        out = model(nn.Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert all(p.grad is not None for p in model.parameters())

    def test_frozen_backbone_still_forwards(self):
        model = TwoLayer()
        model.freeze()
        out = model(nn.Tensor(np.ones((2, 4))))
        assert out.shape == (2, 2)


class TestStateDict:
    def test_roundtrip(self):
        a, b = TwoLayer(seed=0), TwoLayer(seed=1)
        b.load_state_dict(a.state_dict())
        x = nn.Tensor(np.random.default_rng(0).random((3, 4)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_state_dict_is_a_copy(self):
        model = TwoLayer()
        state = model.state_dict()
        state["first.weight"][:] = 0.0
        assert not np.allclose(model.first.weight.data, 0.0)

    def test_missing_key_raises(self):
        model = TwoLayer()
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_unexpected_key_raises(self):
        model = TwoLayer()
        state = model.state_dict()
        state["ghost"] = np.ones(1)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        model = TwoLayer()
        state = model.state_dict()
        state["scale"] = np.ones(2)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            nn.Module()(1)
