"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import nn
from repro.attacks import roc_auc_score
from repro.attacks.similarity import DISTANCE_FUNCTIONS, PAPER_METRICS
from repro.graph import CooAdjacency, gcn_normalize
from repro.tee import pages_for, PAGE_BYTES
from repro.tee.sealed import seal, unseal

SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def matrices(max_rows=6, max_cols=6):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.integers(1, max_rows), st.integers(1, max_cols)
        ),
        elements=finite_floats,
    )


class TestAutogradProperties:
    @SETTINGS
    @given(matrices())
    def test_add_gradient_is_ones(self, x):
        t = nn.Tensor(x, requires_grad=True)
        (t + t).sum().backward()
        np.testing.assert_allclose(t.grad, 2.0 * np.ones_like(x))

    @SETTINGS
    @given(matrices())
    def test_sum_gradient_shape(self, x):
        t = nn.Tensor(x, requires_grad=True)
        t.sum().backward()
        assert t.grad.shape == x.shape

    @SETTINGS
    @given(matrices())
    def test_relu_idempotent(self, x):
        once = nn.relu(nn.Tensor(x)).data
        twice = nn.relu(nn.relu(nn.Tensor(x))).data
        np.testing.assert_array_equal(once, twice)

    @SETTINGS
    @given(matrices())
    def test_log_softmax_rows_are_distributions(self, x):
        out = nn.log_softmax(nn.Tensor(x), axis=1).data
        np.testing.assert_allclose(np.exp(out).sum(axis=1), 1.0, rtol=1e-9)

    @SETTINGS
    @given(matrices(), matrices())
    def test_concat_preserves_content(self, a, b):
        rows = min(a.shape[0], b.shape[0])
        a, b = a[:rows], b[:rows]
        out = nn.concatenate([nn.Tensor(a), nn.Tensor(b)], axis=1).data
        np.testing.assert_array_equal(out[:, : a.shape[1]], a)
        np.testing.assert_array_equal(out[:, a.shape[1]:], b)

    @SETTINGS
    @given(matrices())
    def test_transpose_involution(self, x):
        t = nn.Tensor(x)
        np.testing.assert_array_equal(t.T.T.data, x)


@st.composite
def edge_lists(draw, max_nodes=12):
    n = draw(st.integers(2, max_nodes))
    num_edges = draw(st.integers(0, n * (n - 1) // 2))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    return n, edges


class TestAdjacencyProperties:
    @SETTINGS
    @given(edge_lists())
    def test_from_edge_list_always_symmetric(self, data):
        n, edges = data
        adj = CooAdjacency.from_edge_list(n, edges)
        assert adj.is_symmetric()

    @SETTINGS
    @given(edge_lists())
    def test_no_self_loops(self, data):
        n, edges = data
        adj = CooAdjacency.from_edge_list(n, edges)
        assert not np.any(adj.rows == adj.cols)

    @SETTINGS
    @given(edge_lists())
    def test_edge_count_consistency(self, data):
        n, edges = data
        adj = CooAdjacency.from_edge_list(n, edges)
        assert adj.num_entries == 2 * adj.num_edges
        assert adj.num_edges == len(adj.edge_set())

    @SETTINGS
    @given(edge_lists())
    def test_degrees_sum_to_entries(self, data):
        n, edges = data
        adj = CooAdjacency.from_edge_list(n, edges)
        assert adj.degrees().sum() == adj.num_entries

    @SETTINGS
    @given(edge_lists())
    def test_gcn_norm_rows_bounded(self, data):
        n, edges = data
        adj = CooAdjacency.from_edge_list(n, edges)
        norm = gcn_normalize(adj).toarray()
        assert np.all(np.isfinite(norm))
        assert np.all(norm >= 0)
        assert norm.max() <= 1.0 + 1e-12

    @SETTINGS
    @given(edge_lists())
    def test_memory_nonnegative_and_monotone(self, data):
        n, edges = data
        adj = CooAdjacency.from_edge_list(n, edges)
        assert adj.memory_bytes() >= n * 8
        assert adj.memory_bytes() <= adj.num_entries * 24 + n * 8


class TestAttackProperties:
    @SETTINGS
    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(2, 8), st.integers(1, 5)),
            elements=st.floats(0.1, 10.0),
        )
    )
    def test_distances_nonnegative(self, x):
        for metric in PAPER_METRICS:
            assert np.all(DISTANCE_FUNCTIONS[metric](x, x[::-1]) >= -1e-9)

    @SETTINGS
    @given(st.integers(1, 30), st.integers(1, 30), st.randoms())
    def test_auc_complement_symmetry(self, pos, neg, rnd):
        rng = np.random.default_rng(rnd.randint(0, 10**6))
        labels = np.array([1] * pos + [0] * neg)
        scores = rng.random(pos + neg)
        auc = roc_auc_score(labels, scores)
        flipped = roc_auc_score(labels, -scores)
        assert auc + flipped == pytest.approx(1.0)

    @SETTINGS
    @given(st.integers(1, 30), st.integers(1, 30))
    def test_auc_bounded(self, pos, neg):
        rng = np.random.default_rng(pos * 31 + neg)
        labels = np.array([1] * pos + [0] * neg)
        auc = roc_auc_score(labels, rng.random(pos + neg))
        assert 0.0 <= auc <= 1.0


class TestTeeProperties:
    @SETTINGS
    @given(st.integers(0, 10**9))
    def test_pages_cover_bytes(self, num_bytes):
        pages = pages_for(num_bytes)
        assert pages * PAGE_BYTES >= num_bytes
        assert (pages - 1) * PAGE_BYTES < num_bytes or pages == 0

    @SETTINGS
    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=5),
            max_size=4,
        ),
        st.text(min_size=1, max_size=16),
    )
    def test_seal_unseal_roundtrip(self, payload, measurement):
        blob = seal(payload, measurement)
        assert unseal(blob, measurement) == payload

    @SETTINGS
    @given(st.text(min_size=1, max_size=16), st.text(min_size=1, max_size=16))
    def test_seal_binds_identity(self, m1, m2):
        if m1 == m2:
            return
        from repro.errors import SealingError

        blob = seal("secret", m1)
        with pytest.raises(SealingError):
            unseal(blob, m2)
