"""Loss function tests: values against closed forms, masking, gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


class TestCrossEntropy:
    def test_uniform_logits_give_log_c(self):
        logits = nn.Tensor(np.zeros((5, 4)))
        loss = nn.cross_entropy(logits, np.zeros(5, dtype=int))
        assert loss.item() == pytest.approx(np.log(4.0))

    def test_perfect_prediction_near_zero(self):
        logits = np.full((3, 3), -100.0)
        logits[np.arange(3), np.arange(3)] = 100.0
        loss = nn.cross_entropy(nn.Tensor(logits), np.arange(3))
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_mask_selects_subset(self):
        logits = np.zeros((4, 2))
        logits[2] = [100.0, -100.0]  # node 2 predicts class 0 perfectly
        labels = np.array([0, 0, 0, 0])
        masked = nn.cross_entropy(nn.Tensor(logits), labels, mask=np.array([2]))
        assert masked.item() == pytest.approx(0.0, abs=1e-6)
        full = nn.cross_entropy(nn.Tensor(logits), labels)
        assert full.item() > masked.item()

    def test_boolean_mask(self):
        logits = nn.Tensor(np.zeros((4, 2)))
        labels = np.zeros(4, dtype=int)
        mask = np.array([True, False, True, False])
        loss = nn.cross_entropy(logits, labels, mask=mask)
        assert loss.item() == pytest.approx(np.log(2.0))

    def test_empty_mask_raises(self):
        with pytest.raises(ValueError):
            nn.cross_entropy(
                nn.Tensor(np.zeros((3, 2))), np.zeros(3, dtype=int), mask=np.array([], dtype=int)
            )

    def test_out_of_range_labels_raise(self):
        with pytest.raises(ValueError):
            nn.cross_entropy(nn.Tensor(np.zeros((2, 2))), np.array([0, 5]))

    def test_label_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            nn.cross_entropy(nn.Tensor(np.zeros((3, 2))), np.zeros(2, dtype=int))

    def test_gradient_is_softmax_minus_onehot(self):
        rng = np.random.default_rng(0)
        raw = rng.random((4, 3))
        labels = np.array([0, 1, 2, 1])
        logits = nn.Tensor(raw, requires_grad=True)
        nn.cross_entropy(logits, labels).backward()
        exp = np.exp(raw - raw.max(axis=1, keepdims=True))
        softmax = exp / exp.sum(axis=1, keepdims=True)
        one_hot = np.eye(3)[labels]
        np.testing.assert_allclose(logits.grad, (softmax - one_hot) / 4.0, rtol=1e-8)

    def test_training_decreases_loss(self):
        rng = np.random.default_rng(1)
        x = rng.random((30, 6))
        labels = x[:, :3].argmax(axis=1)  # linearly learnable target
        layer = nn.Linear(6, 3, rng=rng)
        opt = nn.Adam(layer.parameters(), lr=0.1)
        losses = []
        for _ in range(60):
            opt.zero_grad()
            loss = nn.cross_entropy(layer(nn.Tensor(x)), labels)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.5


class TestNllLoss:
    def test_matches_cross_entropy(self):
        rng = np.random.default_rng(2)
        raw = rng.random((5, 4))
        labels = rng.integers(0, 4, 5)
        ce = nn.cross_entropy(nn.Tensor(raw), labels).item()
        nll = nn.nll_loss(nn.log_softmax(nn.Tensor(raw), axis=1), labels).item()
        assert ce == pytest.approx(nll)


class TestL2Loss:
    def test_zero_for_exact_match(self):
        target = np.ones((3, 2))
        assert nn.l2_loss(nn.Tensor(target), target).item() == pytest.approx(0.0)

    def test_value(self):
        pred = nn.Tensor(np.zeros((2, 2)))
        target = np.ones((2, 2)) * 2.0
        assert nn.l2_loss(pred, target).item() == pytest.approx(4.0)

    def test_gradient_direction(self):
        pred = nn.Tensor(np.zeros((2, 2)), requires_grad=True)
        nn.l2_loss(pred, np.ones((2, 2))).backward()
        assert np.all(pred.grad < 0)  # move towards target
