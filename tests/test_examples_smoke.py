"""Example-script smoke tests: importable, documented, runnable entry points.

Full example runs take tens of seconds each (they train real models), so
CI-level checks verify structure; the `make examples` target runs them for
real.
"""

from __future__ import annotations

import ast
import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExampleStructure:
    def test_six_examples_present(self):
        names = {p.stem for p in EXAMPLES}
        assert {
            "quickstart",
            "recommender_vault",
            "sgx_deployment",
            "link_stealing_audit",
            "edge_query",
            "defense_comparison",
        } <= names

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_parses_and_has_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.stem} missing a module docstring"

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_has_main_guard(self, path):
        source = path.read_text()
        assert 'if __name__ == "__main__":' in source

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_defines_main_callable(self, path):
        module = _load(path)
        assert callable(getattr(module, "main", None))

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_only_uses_public_api(self, path):
        """Examples must demonstrate the public surface, not internals."""
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                assert not any(part.startswith("_") for part in node.module.split(".")), (
                    f"{path.stem} imports private module {node.module}"
                )
