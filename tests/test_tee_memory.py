"""Enclave memory model tests: page accounting, peaks, EPC overflow."""

from __future__ import annotations

import pytest

from repro.errors import EnclaveMemoryError
from repro.tee import (
    EPC_BYTES,
    PAGE_BYTES,
    PRM_BYTES,
    EnclaveMemoryModel,
    pages_for,
)


class TestPagesFor:
    def test_exact_page(self):
        assert pages_for(PAGE_BYTES) == 1

    def test_rounds_up(self):
        assert pages_for(PAGE_BYTES + 1) == 2

    def test_zero(self):
        assert pages_for(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            pages_for(-1)


class TestConstants:
    def test_sgx1_sizes(self):
        assert EPC_BYTES == 96 * 1024 * 1024
        assert PRM_BYTES == 128 * 1024 * 1024
        assert EPC_BYTES < PRM_BYTES


class TestAllocation:
    def test_allocate_and_free(self):
        mem = EnclaveMemoryModel()
        mem.allocate("weights", 10_000)
        assert mem.resident_bytes == pages_for(10_000) * PAGE_BYTES
        mem.free("weights")
        assert mem.resident_bytes == 0

    def test_duplicate_name_rejected(self):
        mem = EnclaveMemoryModel()
        mem.allocate("a", 100)
        with pytest.raises(EnclaveMemoryError):
            mem.allocate("a", 100)

    def test_free_unknown_rejected(self):
        with pytest.raises(EnclaveMemoryError):
            EnclaveMemoryModel().free("ghost")

    def test_free_all_prefix(self):
        mem = EnclaveMemoryModel()
        mem.allocate("ecall/input0", 100)
        mem.allocate("ecall/input1", 100)
        mem.allocate("model/w", 100)
        mem.free_all("ecall/")
        assert list(mem.allocations()) == ["model/w"]

    def test_peak_tracks_maximum(self):
        mem = EnclaveMemoryModel()
        mem.allocate("a", 5 * PAGE_BYTES)
        mem.allocate("b", 3 * PAGE_BYTES)
        mem.free("a")
        assert mem.peak_bytes == 8 * PAGE_BYTES
        assert mem.resident_bytes == 3 * PAGE_BYTES

    def test_reset_peak(self):
        mem = EnclaveMemoryModel()
        mem.allocate("a", 5 * PAGE_BYTES)
        mem.free("a")
        mem.reset_peak()
        assert mem.peak_bytes == 0


class TestEpcOverflow:
    def test_no_swap_under_epc(self):
        mem = EnclaveMemoryModel(epc_bytes=10 * PAGE_BYTES)
        mem.allocate("a", 5 * PAGE_BYTES)
        assert mem.swapped_pages() == 0

    def test_swap_counts_overflow_pages(self):
        mem = EnclaveMemoryModel(epc_bytes=10 * PAGE_BYTES)
        mem.allocate("a", 14 * PAGE_BYTES)
        assert mem.swapped_pages() == 4

    def test_hard_limit_enforced(self):
        mem = EnclaveMemoryModel(
            epc_bytes=4 * PAGE_BYTES, hard_limit_bytes=8 * PAGE_BYTES
        )
        mem.allocate("a", 6 * PAGE_BYTES)
        with pytest.raises(EnclaveMemoryError):
            mem.allocate("b", 6 * PAGE_BYTES)
        # failed allocation must not be recorded
        assert "b" not in mem.allocations()

    def test_stats_snapshot(self):
        mem = EnclaveMemoryModel(epc_bytes=4 * PAGE_BYTES)
        mem.allocate("a", 6 * PAGE_BYTES)
        stats = mem.stats()
        assert stats.swapped_pages_peak == 2
        assert stats.total_allocations == 1
        assert not stats.within_epc
        assert stats.peak_mb == pytest.approx(6 * PAGE_BYTES / (1024 * 1024))

    def test_invalid_epc(self):
        with pytest.raises(ValueError):
            EnclaveMemoryModel(epc_bytes=0)
