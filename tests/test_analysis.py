"""Analysis tests: silhouette, t-SNE, report rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    TsneConfig,
    format_cell,
    kl_divergence,
    pairwise_euclidean,
    render_series,
    render_table,
    silhouette_score,
    tsne,
)


class TestPairwiseEuclidean:
    def test_matches_norm(self):
        rng = np.random.default_rng(0)
        x = rng.random((10, 4))
        dist = pairwise_euclidean(x)
        expected = np.linalg.norm(x[:, None, :] - x[None, :, :], axis=2)
        np.testing.assert_allclose(dist, expected, atol=1e-7)

    def test_zero_diagonal(self):
        x = np.random.default_rng(1).random((5, 3))
        np.testing.assert_allclose(np.diag(pairwise_euclidean(x)), 0.0, atol=1e-9)

    def test_no_negative_values_from_rounding(self):
        x = np.ones((4, 2)) * 1e8
        assert np.all(pairwise_euclidean(x) >= 0)


class TestSilhouette:
    def test_well_separated_clusters_near_one(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 0.01, (20, 2))
        b = rng.normal(10, 0.01, (20, 2)) + 10
        x = np.vstack([a, b])
        labels = np.array([0] * 20 + [1] * 20)
        assert silhouette_score(x, labels) > 0.95

    def test_random_labels_near_zero(self):
        rng = np.random.default_rng(1)
        x = rng.random((60, 4))
        labels = rng.integers(0, 3, 60)
        assert abs(silhouette_score(x, labels)) < 0.2

    def test_swapped_clusters_negative(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0, 0.01, (10, 2))
        b = rng.normal(5, 0.01, (10, 2))
        x = np.vstack([a, b])
        wrong = np.array([0, 1] * 10)  # labels uncorrelated with clusters
        right = np.array([0] * 10 + [1] * 10)
        assert silhouette_score(x, wrong) < silhouette_score(x, right)

    def test_singleton_cluster_contributes_zero(self):
        x = np.array([[0.0], [0.1], [5.0]])
        labels = np.array([0, 0, 1])
        score = silhouette_score(x, labels)
        assert np.isfinite(score)

    def test_single_cluster_rejected(self):
        with pytest.raises(ValueError):
            silhouette_score(np.ones((5, 2)), np.zeros(5))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            silhouette_score(np.ones((5, 2)), np.zeros(4))

    def test_matches_manual_two_point_case(self):
        # two clusters of two points each at distance d apart
        x = np.array([[0.0], [1.0], [10.0], [11.0]])
        labels = np.array([0, 0, 1, 1])
        # a(i)=1, b(i)=mean(|x_i - other cluster|)
        score = silhouette_score(x, labels)
        a = 1.0
        b0 = (10.0 + 11.0) / 2
        expected0 = (b0 - a) / b0
        b1 = (9.0 + 10.0) / 2
        expected1 = (b1 - a) / b1
        assert score == pytest.approx((expected0 * 2 + expected1 * 2) / 4, rel=1e-6)


class TestTsne:
    def test_output_shape(self):
        rng = np.random.default_rng(0)
        x = rng.random((30, 8))
        y = tsne(x, TsneConfig(iterations=50, seed=0))
        assert y.shape == (30, 2)
        assert np.all(np.isfinite(y))

    def test_preserves_cluster_structure(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0, 0.05, (15, 6))
        b = rng.normal(4, 0.05, (15, 6))
        x = np.vstack([a, b])
        y = tsne(x, TsneConfig(iterations=250, seed=0))
        labels = np.array([0] * 15 + [1] * 15)
        # clusters should separate in the embedding too
        assert silhouette_score(y, labels) > 0.3

    def test_centres_output(self):
        x = np.random.default_rng(2).random((20, 5))
        y = tsne(x, TsneConfig(iterations=30, seed=0))
        np.testing.assert_allclose(y.mean(axis=0), 0.0, atol=1e-8)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            tsne(np.ones((3, 2)))

    def test_deterministic(self):
        x = np.random.default_rng(3).random((15, 4))
        a = tsne(x, TsneConfig(iterations=30, seed=5))
        b = tsne(x, TsneConfig(iterations=30, seed=5))
        np.testing.assert_array_equal(a, b)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TsneConfig(perplexity=0.5)
        with pytest.raises(ValueError):
            TsneConfig(iterations=0)

    def test_kl_divergence_nonnegative(self):
        rng = np.random.default_rng(4)
        x = rng.random((20, 5))
        y = tsne(x, TsneConfig(iterations=100, seed=0))
        assert kl_divergence(x, y) >= 0

    def test_kl_lower_for_better_embedding(self):
        rng = np.random.default_rng(5)
        x = np.vstack([
            rng.normal(0, 0.05, (12, 6)),
            rng.normal(5, 0.05, (12, 6)),
        ])
        good = tsne(x, TsneConfig(iterations=250, seed=0))
        bad = rng.random((24, 2))
        assert kl_divergence(x, good) < kl_divergence(x, bad)


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_render_table_with_title(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_render_series(self):
        text = render_series("k", [1, 2], {"acc": [0.5, 0.6]})
        assert "k" in text and "acc" in text and "0.6" in text

    def test_format_cell_floats(self):
        assert format_cell(0.123456) == "0.1235"
        assert format_cell(123456.0) == "1.23e+05"
        assert format_cell(0) == "0"
        assert format_cell("word") == "word"
        assert format_cell(0.0) == "0"


class TestRenderScatter:
    def test_basic_grid(self):
        import numpy as np
        from repro.analysis import render_scatter

        coords = np.array([[0.0, 0.0], [1.0, 1.0]])
        text = render_scatter(coords, np.array([0, 1]), width=10, height=5)
        lines = text.splitlines()
        assert lines[0].startswith("+") and lines[-1].startswith("+")
        assert "0" in text and "1" in text

    def test_clusters_occupy_different_regions(self):
        import numpy as np
        from repro.analysis import render_scatter

        rng = np.random.default_rng(0)
        a = rng.normal(0, 0.1, (20, 2))
        b = rng.normal(5, 0.1, (20, 2))
        coords = np.vstack([a, b])
        labels = np.array([0] * 20 + [1] * 20)
        text = render_scatter(coords, labels, width=40, height=12)
        # zeros land left/bottom, ones right/top: no row mixes them heavily
        body = text.splitlines()[1:-1]
        mixed = sum(1 for row in body if "0" in row and "1" in row)
        assert mixed <= 2

    def test_title(self):
        import numpy as np
        from repro.analysis import render_scatter

        text = render_scatter(np.ones((3, 2)), np.zeros(3), title="My scatter")
        assert text.splitlines()[0] == "My scatter"

    def test_degenerate_identical_points(self):
        import numpy as np
        from repro.analysis import render_scatter

        text = render_scatter(np.ones((5, 2)), np.arange(5), width=8, height=4)
        assert "+--------+" in text

    def test_validation(self):
        import numpy as np
        import pytest as _pytest
        from repro.analysis import render_scatter

        with _pytest.raises(ValueError):
            render_scatter(np.ones((3, 3)), np.zeros(3))
        with _pytest.raises(ValueError):
            render_scatter(np.ones((3, 2)), np.zeros(2))
        with _pytest.raises(ValueError):
            render_scatter(np.ones((3, 2)), np.zeros(3), width=1)

    def test_class_digits_mod_ten(self):
        import numpy as np
        from repro.analysis import render_scatter

        text = render_scatter(
            np.array([[0.0, 0.0]]), np.array([12]), width=5, height=3
        )
        assert "2" in text
