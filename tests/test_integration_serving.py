"""Integration: the full operational lifecycle on one deployment.

Vendor exports a bundle → device imports it → a VaultServer serves a
heavy-tailed query stream through per-node ECALLs → the deployer audits
the access-pattern side channel and the link stealing surface.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import link_stealing_attack
from repro.deploy import VaultServer, zipf_workload
from repro.errors import SecurityViolation
from repro.io import export_bundle, import_bundle, save_graph, load_graph
from repro.tee import AccessPatternAuditor, OneWayChannel


@pytest.fixture(scope="module")
def operational(trained_vault, tmp_path_factory):
    run = trained_vault
    bundle_dir = tmp_path_factory.mktemp("ops") / "bundle"
    export_bundle(
        bundle_dir,
        run.backbone,
        run.rectifiers["parallel"],
        run.substitute,
        run.graph.adjacency,
    )
    save_graph(run.graph, bundle_dir / "dataset.npz")
    session = import_bundle(bundle_dir)
    return run, bundle_dir, session


class TestOperationalLifecycle:
    def test_imported_session_serves_workload(self, operational):
        run, bundle_dir, session = operational
        graph = load_graph(bundle_dir / "dataset.npz")
        server = VaultServer(session, graph.features)
        workload = zipf_workload(graph.num_nodes, 60, seed=1)
        labels = server.serve(workload, batch_size=6)
        assert labels.shape == (60,)
        assert server.stats.queries_served == 60

    def test_served_labels_match_direct_inference(self, operational):
        run, bundle_dir, session = operational
        graph = load_graph(bundle_dir / "dataset.npz")
        full, _ = session.predict(graph.features)
        server = VaultServer(session, graph.features)
        for node in (0, 17, 42):
            assert server.query(node) == full[node]

    def test_per_node_ecall_error_paths(self, operational):
        run, bundle_dir, session = operational
        # empty channel
        with pytest.raises(SecurityViolation):
            session.enclave.ecall_infer_nodes(OneWayChannel(), [0])
        # wrong node count in payload
        channel = OneWayChannel()
        for layer in run.rectifiers["parallel"].consumed_layers():
            channel.push(np.ones((3, run.backbone.layer_output_dims()[layer])))
        with pytest.raises(ValueError):
            session.enclave.ecall_infer_nodes(channel, [0])

    def test_deployment_survives_security_audit(self, operational):
        run, bundle_dir, session = operational
        graph = run.graph
        # 1. link stealing on the observable surface collapses to baseline.
        gv = link_stealing_attack(
            run.backbone_embeddings(), graph.adjacency, num_pairs=400, seed=0
        )
        base = link_stealing_attack(
            graph.features, graph.adjacency, num_pairs=400, seed=0
        )
        assert gv.mean_auc() <= base.mean_auc() + 0.12
        # 2. full-graph serving is access-pattern silent.
        auditor = AccessPatternAuditor(graph.num_nodes)
        for node in range(5):
            auditor.observe_full_graph_ecall([node])
        assert not auditor.leakage_report(graph.adjacency).leaks

    def test_audit_flags_per_node_path(self, operational):
        run, bundle_dir, session = operational
        graph = run.graph
        hops = len(run.rectifiers["parallel"].convs)
        auditor = AccessPatternAuditor(graph.num_nodes)
        for node in range(20):
            auditor.observe_node_ecall(graph.adjacency, [node], hops)
        report = auditor.leakage_report(graph.adjacency)
        assert report.leaks  # the deployer sees the cost before choosing
