"""Serialization tests: graphs, models, sealed deployment bundles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.io import (
    build_from_architecture,
    export_bundle,
    import_bundle,
    load_graph,
    load_model,
    save_graph,
    save_model,
)
from repro.models import GCNBackbone, MlpBackbone, make_rectifier


class TestGraphRoundtrip:
    def test_roundtrip(self, tiny_graph, tmp_path):
        path = tmp_path / "graph.npz"
        save_graph(tiny_graph, path)
        loaded = load_graph(path)
        assert loaded.name == tiny_graph.name
        np.testing.assert_array_equal(loaded.features, tiny_graph.features)
        np.testing.assert_array_equal(loaded.labels, tiny_graph.labels)
        assert loaded.adjacency.edge_set() == tiny_graph.adjacency.edge_set()

    def test_preserves_edge_weights(self, tmp_path):
        from repro.graph import CooAdjacency, Graph

        adj = CooAdjacency(
            3, np.array([0, 1]), np.array([1, 0]), values=np.array([2.5, 2.5])
        )
        graph = Graph(np.eye(3), np.array([0, 1, 0]), adj, name="weighted")
        path = tmp_path / "weighted.npz"
        save_graph(graph, path)
        loaded = load_graph(path)
        np.testing.assert_array_equal(loaded.adjacency.values, [2.5, 2.5])


class TestModelRoundtrip:
    def test_gcn_backbone(self, tmp_path):
        model = GCNBackbone(12, (8, 3), seed=4)
        path = tmp_path / "gcn.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert isinstance(loaded, GCNBackbone)
        assert loaded.channels == (8, 3)
        for (name_a, p_a), (name_b, p_b) in zip(
            model.named_parameters(), loaded.named_parameters()
        ):
            assert name_a == name_b
            np.testing.assert_array_equal(p_a.data, p_b.data)

    def test_mlp_backbone(self, tmp_path):
        model = MlpBackbone(6, (4, 2), seed=1)
        path = tmp_path / "mlp.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert isinstance(loaded, MlpBackbone)
        x = np.random.default_rng(0).random((5, 6))
        model.eval(), loaded.eval()
        np.testing.assert_array_equal(
            model.predict(x), loaded.predict(x)
        )

    @pytest.mark.parametrize("scheme", ["parallel", "series", "cascaded"])
    def test_rectifiers(self, tmp_path, scheme):
        rect = make_rectifier(scheme, (16, 8, 3), (16, 8, 3), seed=2)
        path = tmp_path / f"{scheme}.npz"
        save_model(rect, path)
        loaded = load_model(path)
        assert loaded.scheme == scheme
        assert loaded.num_parameters() == rect.num_parameters()
        assert loaded.consumed_layers() == rect.consumed_layers()

    def test_series_tap_preserved(self, tmp_path):
        rect = make_rectifier("series", (16, 8, 3), (4, 3), tap=0, seed=2)
        path = tmp_path / "series.npz"
        save_model(rect, path)
        assert load_model(path).consumed_layers() == (0,)

    def test_unknown_architecture_kind(self):
        with pytest.raises(ValueError):
            build_from_architecture({"kind": "transformer"})

    def test_unsupported_model_type(self, tmp_path):
        with pytest.raises(TypeError):
            save_model(object(), tmp_path / "bad.npz")


class TestBundle:
    def test_export_import_roundtrip(self, trained_vault, tmp_path):
        run = trained_vault
        bundle_dir = tmp_path / "bundle"
        export_bundle(
            bundle_dir,
            run.backbone,
            run.rectifiers["parallel"],
            run.substitute,
            run.graph.adjacency,
        )
        session = import_bundle(bundle_dir)
        labels, profile = session.predict(run.graph.features)
        direct = run.rectifiers["parallel"].predict(
            run.backbone_embeddings(), run.graph.normalized_adjacency()
        )
        np.testing.assert_array_equal(labels, direct)

    def test_bundle_files_exist(self, trained_vault, tmp_path):
        run = trained_vault
        bundle = export_bundle(
            tmp_path / "b",
            run.backbone,
            run.rectifiers["series"],
            run.substitute,
            run.graph.adjacency,
        )
        for path in (
            bundle.backbone_path,
            bundle.substitute_path,
            bundle.rectifier_arch_path,
            bundle.sealed_weights_path,
            bundle.sealed_graph_path,
        ):
            assert path.exists(), path

    def test_private_graph_not_in_plaintext(self, trained_vault, tmp_path):
        """The sealed graph file must not contain the raw edge arrays."""
        run = trained_vault
        bundle = export_bundle(
            tmp_path / "b",
            run.backbone,
            run.rectifiers["series"],
            run.substitute,
            run.graph.adjacency,
        )
        blob_bytes = bundle.sealed_graph_path.read_bytes()
        raw_rows = run.graph.adjacency.rows.tobytes()
        assert raw_rows not in blob_bytes

    def test_missing_file_rejected(self, trained_vault, tmp_path):
        run = trained_vault
        bundle = export_bundle(
            tmp_path / "b",
            run.backbone,
            run.rectifiers["series"],
            run.substitute,
            run.graph.adjacency,
        )
        bundle.sealed_graph_path.unlink()
        with pytest.raises(FileNotFoundError):
            import_bundle(bundle.directory)
