"""Tenant-aware telemetry: bounded cardinality, sketches, cost ledger.

The load-bearing properties, pinned here:

* the metrics registry stays bounded under a 10k-distinct-client flood
  (the cardinality limiter routes the tail into ``__overflow__``);
* per-batch attribution is *exact* — per-key shares sum to the batch
  cost by construction — and the summed ledger reconciles against the
  enclave's own :meth:`ecall_cost_totals` deltas, pipelined and
  sequential, to the same precision the profiling layer pins;
* no raw client identifier survives into any metric label, gate
  emission, report field, or dashboard cell — only hashed tokens do.
"""

from __future__ import annotations

import threading

import pytest

from repro.deploy import (
    BatchPolicy,
    MicroBatchScheduler,
    SecureInferenceSession,
    VaultServer,
    zipf_workload,
)
from repro.obs import (
    OVERFLOW_BUCKET,
    CardinalityLimiter,
    HeavyHitters,
    MetricsRegistry,
    Telemetry,
    TenantCostLedger,
    TenantQuota,
    hash_tenant,
    render_dashboard,
    render_prometheus,
)
from repro.obs.health import AlertManager
from repro.obs.tenancy import TENANT_COST_KEYS


def _cost(ecalls=1, transfer=0.001, compute=0.004, paging=0.0005,
          pages=2.0, payload=4096):
    return {
        "ecall_count": float(ecalls), "transfer_seconds": transfer,
        "compute_seconds": compute, "paging_seconds": paging,
        "paging_pages": pages, "payload_bytes": float(payload),
    }


class TestHashTenant:
    def test_lowercase_alpha_only_and_stable(self):
        token = hash_tenant("client_7")
        assert token == hash_tenant("client_7")
        assert len(token) == 12
        assert token.isalpha() and token == token.lower()

    def test_distinct_clients_distinct_tokens(self):
        tokens = {hash_tenant(f"client_{i}") for i in range(512)}
        assert len(tokens) == 512

    def test_raw_id_never_substring_of_token(self):
        assert "client" not in hash_tenant("client_0")


class TestCardinalityLimiter:
    def test_admission_is_sticky_and_bounded(self):
        limiter = CardinalityLimiter(max_values=3)
        assert limiter.admit("a") == "a"
        assert limiter.admit("b") == "b"
        assert limiter.admit("c") == "c"
        assert limiter.admit("d") == OVERFLOW_BUCKET
        # previously admitted values stay admitted after the cap
        assert limiter.admit("a") == "a"
        assert len(limiter) == 3
        assert limiter.overflowed == 1

    def test_concurrent_admission_never_exceeds_bound(self):
        limiter = CardinalityLimiter(max_values=16)

        def flood(offset):
            for i in range(500):
                limiter.admit(f"v{offset}_{i}")

        threads = [threading.Thread(target=flood, args=(t,))
                   for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(limiter) == 16
        assert limiter.overflowed == 8 * 500 - 16

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            CardinalityLimiter(max_values=0)


class TestHeavyHitters:
    def test_exact_below_capacity(self):
        sketch = HeavyHitters(k=8)
        for _ in range(5):
            sketch.observe("big")
        sketch.observe("small")
        rows = sketch.top()
        assert rows[0] == ("big", 5.0, 0.0)
        assert rows[1] == ("small", 1.0, 0.0)

    def test_space_saving_guarantee_over_skewed_stream(self):
        # any key with true count > total/k must be present, and the
        # reported count overshoots by at most the tracked error.
        sketch = HeavyHitters(k=8)
        true = {}
        for i in range(2000):
            key = f"t{i % 40:02d}" if i % 5 else "whale"
            true[key] = true.get(key, 0) + 1
            sketch.observe(key)
        assert "whale" in sketch
        for key, count, error in sketch.top():
            assert count >= true.get(key, 0)
            assert count - error <= true.get(key, 0)

    def test_bounded_memory(self):
        sketch = HeavyHitters(k=4)
        for i in range(10_000):
            sketch.observe(f"k{i}")
        assert len(sketch) == 4
        assert sketch.total == 10_000


class TestTenantQuota:
    def test_disabled_by_default(self):
        assert not TenantQuota().enabled
        assert TenantQuota(max_queries=1).enabled

    def test_rejects_negative_bounds(self):
        with pytest.raises(ValueError):
            TenantQuota(max_queries=-1)


class TestTenantCostLedger:
    def test_split_is_exact_per_batch(self):
        ledger = TenantCostLedger()
        cost = _cost()
        split = ledger.record_batch(
            [("alice", [1, 2, 3]), ("bob", [3, 4])], cost,
            latency_seconds=0.01,
        )
        assert len(split) == 2
        for key in TENANT_COST_KEYS:
            assert sum(s[key] for s in split.values()) == cost[key]
        assert sum(s["latency_seconds"] for s in split.values()) == 0.01

    def test_union_plan_weights_shared_targets(self):
        # node 3 is requested by both tenants: each owes half of it.
        ledger = TenantCostLedger()
        ledger.record_batch(
            [("alice", [1, 2, 3]), ("bob", [3, 4])], _cost(pages=8.0)
        )
        report = ledger.report()
        by_tenant = {row["tenant"]: row for row in report["top"]}
        alice, bob = hash_tenant("alice"), hash_tenant("bob")
        # union = {1,2,3,4}; alice owns 1,2 + half of 3 = 2.5/4
        assert by_tenant[alice]["union_share"] == pytest.approx(2.5)
        assert by_tenant[bob]["union_share"] == pytest.approx(1.5)
        assert by_tenant[alice]["epc_pages"] == pytest.approx(8.0 * 2.5 / 4)

    def test_totals_mirror_batch_accumulation(self):
        ledger = TenantCostLedger()
        for i in range(50):
            ledger.record_batch(
                [(f"c{i % 7}", [i, i + 1]), (f"c{(i + 1) % 7}", [i])],
                _cost(transfer=0.001 * (i + 1)),
                latency_seconds=1e-4,
            )
        totals = ledger.totals()
        summed = ledger.tenant_totals()
        for key in TENANT_COST_KEYS:
            assert summed[key] == pytest.approx(totals[key], abs=1e-9)

    def test_registry_cardinality_bounded_under_client_flood(self):
        registry = MetricsRegistry()
        ledger = TenantCostLedger(registry=registry, max_tenants=64)
        for i in range(10_000):
            ledger.record_batch([(f"flood_client_{i}", [i % 97])], _cost())
        counter = registry.get("vault_tenant_queries_total")
        series = list(counter.series())
        # 64 admitted tenants + the overflow bucket
        assert len(series) <= 65
        assert ledger.limiter.overflowed == 10_000 - 64
        overflow = registry.get("vault_tenant_overflow_total")
        assert overflow.value() == 10_000 - 64
        # the flood is fully attributed, none of it silently vanished
        assert ledger.totals()["ecall_count"] == 10_000.0

    def test_no_raw_client_identifier_anywhere(self):
        telemetry = Telemetry()
        ledger = TenantCostLedger(
            registry=telemetry.registry, gate=telemetry.enclave_gate()
        )
        secret = "super_secret_client_name_42"
        ledger.record_batch([(secret, [1, 2])], _cost())
        ledger.note_suspicion(secret, "pair_probing")
        exposition = render_prometheus(telemetry.registry)
        assert secret not in exposition
        assert hash_tenant(secret) in exposition
        report = repr(ledger.report())
        assert secret not in report
        html = render_dashboard(telemetry, tenants=ledger)
        assert secret not in html
        assert hash_tenant(secret) in html

    def test_gate_accepts_hashed_tenant_labels(self):
        telemetry = Telemetry()
        ledger = TenantCostLedger(gate=telemetry.enclave_gate())
        ledger.record_batch([("alice", [1])], _cost())
        exposition = render_prometheus(telemetry.registry)
        assert "enclave_tenant_compute_seconds_total" in exposition
        assert f'tenant="{hash_tenant("alice")}"' in exposition

    def test_overflow_bucket_translates_for_the_gate(self):
        telemetry = Telemetry()
        ledger = TenantCostLedger(
            registry=telemetry.registry, gate=telemetry.enclave_gate(),
            max_tenants=1,
        )
        ledger.record_batch([("alice", [1])], _cost())
        ledger.record_batch([("bob", [2])], _cost())
        exposition = render_prometheus(telemetry.registry)
        assert 'tenant="overflow"' in exposition
        assert OVERFLOW_BUCKET in repr(ledger.report())

    def test_quota_breach_fires_security_alert_once_active(self):
        alerts = AlertManager()
        ledger = TenantCostLedger(
            quota=TenantQuota(max_queries=2), alerts=alerts
        )
        for i in range(4):
            ledger.record_batch([("greedy", [i])], _cost())
        assert ledger.over_quota("greedy")
        assert not ledger.over_quota("modest")
        key = f"tenant/quota/{hash_tenant('greedy')}"
        assert alerts.is_active(key)

    def test_suspicion_routes_to_hashed_tenant(self):
        registry = MetricsRegistry()
        ledger = TenantCostLedger(registry=registry)
        token = ledger.note_suspicion("prober", "pair_probing")
        assert token == hash_tenant("prober")
        rows = ledger.report()["top"]
        assert len(rows) == 1
        # suspicion alone attributes no cost, only the flag tally
        assert rows[0]["enclave_seconds"] == 0.0
        assert rows[0]["suspicions"] == {"pair_probing": 1}
        assert registry.get("vault_tenant_suspicion_total").value(
            tenant=token
        ) == 1.0

    def test_reconcile_flags_mismatch(self):
        ledger = TenantCostLedger()
        ledger.record_batch([("a", [1])], _cost(ecalls=1))
        before = {key: 0.0 for key in TENANT_COST_KEYS}
        after = dict(before, ecall_count=2.0)  # enclave says 2, ledger 1
        result = ledger.reconcile(before, after)
        assert not result["ok"]
        assert not result["keys"]["ecall_count"]["ok"]


class TestDeferredAttribution:
    """defer_batch: the hot path appends, the fold runs at read time."""

    @staticmethod
    def _profile():
        from repro.deploy.profiler import InferenceProfile

        return InferenceProfile(
            backbone_seconds=0.0, transfer_seconds=0.001,
            enclave_seconds=0.0045, paging_seconds=0.0005,
            payload_bytes=4096, peak_enclave_memory_bytes=1 << 20,
        )

    def test_fold_runs_at_read_not_at_defer(self):
        from repro.tee.runtime import DEFAULT_COST_MODEL

        ledger = TenantCostLedger()
        ledger.defer_batch(
            (("alice", [1, 2]),), self._profile(), 1,
            DEFAULT_COST_MODEL, 0.01,
        )
        assert ledger._batches_recorded == 0  # queued, not yet folded
        assert len(ledger._pending) == 1
        assert ledger.batches_recorded == 1  # the read drains the queue
        assert not ledger._pending
        assert ledger.totals()["ecall_count"] == 1.0
        assert hash_tenant("alice") in ledger.tenants()

    def test_bounded_queue_folds_inline(self):
        from repro.tee.runtime import DEFAULT_COST_MODEL

        ledger = TenantCostLedger()
        ledger.drain_at = 8
        profile = self._profile()
        for i in range(50):
            ledger.defer_batch(
                ((f"c{i % 3}", [i]),), profile, 1, DEFAULT_COST_MODEL, 0.0,
            )
            # the backstop keeps memory O(drain_at) with no reader at all
            assert len(ledger._pending) < 8
        assert ledger.batches_recorded == 50

    def test_deferred_matches_eager_attribution(self):
        from repro.obs.profiling import enclave_cost_record
        from repro.tee.runtime import DEFAULT_COST_MODEL

        profile = self._profile()
        cost = enclave_cost_record(
            profile, ecall_count=1, cost_model=DEFAULT_COST_MODEL
        )
        eager, lazy = TenantCostLedger(), TenantCostLedger()
        for i in range(12):
            entries = ((f"c{i % 3}", [i, i + 1]), (f"c{(i + 1) % 3}", [i]))
            eager.record_batch(entries, cost, latency_seconds=0.001)
            lazy.defer_batch(entries, profile, 1, DEFAULT_COST_MODEL, 0.001)
        assert lazy.tenant_totals() == eager.tenant_totals()
        assert lazy.report() == eager.report()


class TestLedgerServingIntegration:
    """The ledger reconciles against the enclave's own counters."""

    CLIENTS = 4

    @pytest.fixture
    def server(self, trained_vault):
        run = trained_vault
        session = SecureInferenceSession(
            run.backbone, run.rectifiers["series"], run.substitute,
            run.graph.adjacency,
        )
        return VaultServer(session, run.graph.features)

    def _assert_reconciled(self, ledger, before, after):
        result = ledger.reconcile(before, after)
        assert result["ok"], result
        totals = ledger.tenant_totals()
        # integer tallies match the enclave exactly
        assert totals["ecall_count"] == (
            after["ecall_count"] - before["ecall_count"]
        )
        assert totals["payload_bytes"] == (
            after["payload_bytes"] - before["payload_bytes"]
        )
        for key in ("transfer_seconds", "compute_seconds",
                    "paging_seconds"):
            assert totals[key] == pytest.approx(
                after[key] - before[key], abs=1e-9
            )

    def test_pipelined_attribution_reconciles(self, trained_vault, server):
        run = trained_vault
        ledger = TenantCostLedger(registry=server.telemetry.registry)
        server.attach_tenancy(ledger)
        workload = zipf_workload(run.graph.num_nodes, 64, seed=9)
        enclave = server._session.enclave
        before = enclave.ecall_cost_totals()
        policy = BatchPolicy(max_batch_size=8, max_wait_ms=2.0)
        with MicroBatchScheduler(server, policy) as scheduler:
            def drive(index):
                for node in workload[index::self.CLIENTS]:
                    scheduler.query(int(node), client=f"client_{index}")

            threads = [threading.Thread(target=drive, args=(i,))
                       for i in range(self.CLIENTS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        after = enclave.ecall_cost_totals()
        self._assert_reconciled(ledger, before, after)
        report = ledger.report()
        assert report["tenants"] == self.CLIENTS
        assert sum(row["queries"] for row in report["top"]) == 64

    def test_sequential_attribution_reconciles(self, trained_vault, server):
        run = trained_vault
        ledger = TenantCostLedger()
        server.attach_tenancy(ledger)
        enclave = server._session.enclave
        before = enclave.ecall_cost_totals()
        workload = zipf_workload(run.graph.num_nodes, 24, seed=11)
        server.serve(workload, batch_size=4)
        after = enclave.ecall_cost_totals()
        self._assert_reconciled(ledger, before, after)
        assert ledger.batches_recorded == 6

    def test_quota_backpressure_throttles_scheduler(self, trained_vault,
                                                    server):
        run = trained_vault
        ledger = TenantCostLedger(quota=TenantQuota(max_queries=4))
        server.attach_tenancy(ledger)
        workload = zipf_workload(run.graph.num_nodes, 24, seed=13)
        policy = BatchPolicy(max_batch_size=4, max_wait_ms=1.0)
        with MicroBatchScheduler(server, policy) as scheduler:
            for node in workload:
                scheduler.query(int(node), client="greedy")
        # every query still answered — backpressure slows, never drops
        assert ledger.report()["top"][0]["queries"] == 24
        assert ledger.over_quota("greedy")

    def test_monitor_flags_route_into_ledger(self, trained_vault, server):
        run = trained_vault
        ledger = TenantCostLedger()
        server.attach_tenancy(ledger)
        assert server.monitor is not None
        assert server.monitor.on_flag == ledger.note_suspicion
        # a probing workload: the same adjacent pairs, many rounds
        from repro.attacks.link_stealing import sample_pairs

        left, right, _ = sample_pairs(
            run.graph.adjacency, num_pairs=8, seed=0
        )
        for _ in range(16):
            for u, v in zip(left, right):
                server.query_batch([int(u), int(v)], client="prober")
        server.monitor.evaluate("prober")
        rows = ledger.report()["top"]
        flagged = {row["tenant"]: row["suspicions"] for row in rows}
        token = hash_tenant("prober")
        assert token in flagged
        assert sum(flagged[token].values()) >= 1
        server.detach_tenancy()
        assert server.monitor.on_flag is None
