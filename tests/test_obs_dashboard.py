"""Operator dashboard: self-contained HTML with inline SVG, no external assets."""

from __future__ import annotations

import pytest

from repro.obs import HealthMonitor, QueryPatternMonitor, Telemetry
from repro.obs.dashboard import (
    histogram_svg,
    render_dashboard,
    sparkline_svg,
    write_dashboard,
)


class _Profile:
    def __init__(self, total_seconds: float, paging_seconds: float = 0.0):
        self.total_seconds = total_seconds
        self.paging_seconds = paging_seconds


@pytest.fixture
def populated():
    """A telemetry hub + health monitor with a representative workload."""
    telemetry = Telemetry()
    registry = telemetry.registry
    registry.counter("vault_queries_total", help="queries").inc(120)
    cache = registry.counter("vault_embedding_cache_events_total", help="cache")
    cache.inc(90, result="hit")
    cache.inc(30, result="miss")
    hist = registry.histogram("vault_query_batch_seconds", help="latency")
    for value in (0.001, 0.002, 0.004, 0.008, 0.002):
        hist.observe(value)
    registry.gauge("vault_peak_enclave_memory_bytes", help="peak").set(2 << 20)
    health = HealthMonitor(telemetry=telemetry)
    for _ in range(64):
        health.observe_batch(1, _Profile(0.002, paging_seconds=0.0001))
        health.observe_cache(True)
    monitor = QueryPatternMonitor(200, health.alerts)
    telemetry.audit.append("query_served", time=0.1, client="c", batch_count=1)
    return telemetry, health, monitor


class TestSvgPrimitives:
    def test_sparkline_is_valid_svg(self):
        svg = sparkline_svg([1.0, 2.0, 3.0, 2.0])
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert "polyline" in svg
        assert 'stroke-width="2"' in svg  # 2px line spec

    def test_sparkline_handles_flat_and_empty(self):
        assert "polyline" in sparkline_svg([5.0, 5.0, 5.0])
        assert 'class="empty"' in sparkline_svg([])

    def test_histogram_trims_to_busy_range(self):
        bounds = [0.001, 0.01, 0.1, 1.0, 10.0]
        counts = [0, 5, 3, 0, 0, 0]
        svg = histogram_svg(bounds, counts)
        assert svg.count("<rect") >= 2
        assert svg.startswith("<svg")

    def test_histogram_handles_all_zero(self):
        assert 'class="empty"' in histogram_svg([0.1, 1.0], [0, 0, 0])


class TestRenderDashboard:
    def test_contains_all_panels(self, populated):
        telemetry, health, monitor = populated
        html = render_dashboard(telemetry, health=health, monitor=monitor)
        for panel in ("Latency", "Embedding cache", "Enclave paging",
                      "SLO", "Alerts", "Query patterns", "Audit trail"):
            assert panel in html, f"missing panel {panel}"

    def test_is_self_contained(self, populated):
        telemetry, health, monitor = populated
        html = render_dashboard(telemetry, health=health, monitor=monitor)
        assert html.lstrip().startswith("<!DOCTYPE html>")
        # no external fetches of any kind
        for marker in ("http://", "https://", "<script src", "<link"):
            assert marker not in html, f"external reference: {marker}"
        assert "<svg" in html and "<style>" in html

    def test_dark_mode_palette_is_embedded(self, populated):
        telemetry, health, monitor = populated
        html = render_dashboard(telemetry, health=health, monitor=monitor)
        assert "prefers-color-scheme: dark" in html

    def test_status_never_color_alone(self, populated):
        telemetry, health, monitor = populated
        health.alerts.fire("slo/x", "slo_burn", "critical", "m", now=1.0)
        html = render_dashboard(telemetry, health=health, monitor=monitor)
        # status glyphs accompany the color-coded severity labels
        assert "●" in html or "✕" in html or "▲" in html
        assert "critical" in html

    def test_renders_without_health_or_monitor(self):
        telemetry = Telemetry()
        telemetry.registry.counter("vault_queries_total", help="q").inc()
        html = render_dashboard(telemetry)
        assert "<!DOCTYPE html>" in html

    def test_security_panel_lists_flagged_clients(self, populated):
        telemetry, health, monitor = populated
        for _ in range(40):
            monitor.observe("prober", [3, 7])
        monitor.evaluate("prober")
        html = render_dashboard(telemetry, health=health, monitor=monitor)
        assert "prober" in html
        assert "pair_probing" in html

    def test_audit_tail_is_rendered(self, populated):
        telemetry, health, monitor = populated
        html = render_dashboard(telemetry, health=health, monitor=monitor)
        assert "query_served" in html

    def test_html_escapes_hostile_strings(self, populated):
        telemetry, health, monitor = populated
        health.alerts.fire(
            "slo/x", "slo_burn", "critical", "<script>alert(1)</script>", now=1.0
        )
        html = render_dashboard(telemetry, health=health, monitor=monitor)
        assert "<script>alert(1)" not in html
        assert "&lt;script&gt;" in html


class TestWriteDashboard:
    def test_writes_file_and_creates_parents(self, populated, tmp_path):
        telemetry, health, monitor = populated
        target = tmp_path / "deep" / "dash.html"
        path = write_dashboard(target, telemetry, health=health, monitor=monitor)
        assert path == target and path.exists()
        assert "<!DOCTYPE html>" in path.read_text()


class TestEmptyAndPartialData:
    """The dashboard must render sensibly at every stage of a server's
    life: fresh boot (no metrics at all), partial traffic (some metric
    families exist, others don't), and no pipeline activity."""

    def test_renders_with_completely_empty_telemetry(self):
        html = render_dashboard(Telemetry())
        assert "<!DOCTYPE html>" in html
        # empty-state placeholders, not broken markup or NaN tiles
        assert "no pipeline activity yet" in html
        assert "no health monitor attached" in html

    def test_renders_with_partial_metrics_only(self):
        telemetry = Telemetry()
        # queries counted, but no latency histogram / cache counters yet
        telemetry.registry.counter("vault_queries_total", help="q").inc(5)
        html = render_dashboard(telemetry)
        assert "<!DOCTYPE html>" in html
        assert "no pipeline activity yet" in html

    def test_histogram_with_zero_observations_renders(self):
        telemetry = Telemetry()
        telemetry.registry.histogram("vault_query_batch_seconds", help="l")
        html = render_dashboard(telemetry)
        assert "<!DOCTYPE html>" in html

    def test_health_with_no_batches_renders(self):
        telemetry = Telemetry()
        health = HealthMonitor(telemetry=telemetry)
        html = render_dashboard(telemetry, health=health)
        assert "<!DOCTYPE html>" in html


class TestPipelinePanel:
    def test_empty_without_pipeline_gauges(self, populated):
        telemetry, health, monitor = populated
        html = render_dashboard(telemetry, health=health, monitor=monitor)
        assert "no pipeline activity yet" in html

    def test_populated_from_published_gauges(self, populated):
        from repro.deploy.scheduler import PipelineStats

        telemetry, health, monitor = populated
        stats = PipelineStats()
        stats.record_batch(
            num_queries=8, targets_requested=8, targets_unique=6,
            staged_seconds=0.004, enclave_seconds=0.002,
            overlapped_seconds=0.001,
        )
        stats.publish_gauges(telemetry.registry)
        html = render_dashboard(telemetry, health=health, monitor=monitor)
        assert "no pipeline activity yet" not in html
        assert "ECALLs / query" in html
        assert "micro-batch" in html


class TestTenantsPanel:
    def test_empty_without_ledger(self):
        html = render_dashboard(Telemetry())
        assert "no tenant ledger attached" in html

    def test_attached_but_idle_ledger(self):
        from repro.obs import TenantCostLedger

        html = render_dashboard(Telemetry(), tenants=TenantCostLedger())
        assert "no attributed batches yet" in html

    def test_top_table_shows_hashed_tenants_only(self):
        from repro.obs import TenantCostLedger, hash_tenant

        telemetry = Telemetry()
        ledger = TenantCostLedger(registry=telemetry.registry)
        cost = {"ecall_count": 1.0, "transfer_seconds": 1e-3,
                "compute_seconds": 4e-3, "paging_seconds": 5e-4,
                "paging_pages": 2.0, "payload_bytes": 4096.0}
        ledger.record_batch([("acme-corp-prod", [1, 2])], cost)
        ledger.note_suspicion("acme-corp-prod", "pair_probing")
        html = render_dashboard(telemetry, tenants=ledger)
        assert "acme-corp-prod" not in html
        assert hash_tenant("acme-corp-prod") in html
        assert "flagged" in html  # suspicion marks the row
