"""Attack tests: similarity metrics, ROC-AUC, and link stealing behaviour."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.spatial import distance as sp_distance

from repro.attacks import (
    DISTANCE_FUNCTIONS,
    PAPER_METRICS,
    attack_advantage,
    link_stealing_attack,
    pairwise_distance,
    roc_auc_score,
    roc_curve,
    sample_pairs,
    stack_embeddings,
)
from repro.graph import CooAdjacency, make_sbm_graph


class TestSimilarityMetrics:
    @pytest.mark.parametrize("metric", PAPER_METRICS)
    def test_matches_scipy(self, metric):
        """Each row-wise metric must agree with scipy's reference."""
        rng = np.random.default_rng(0)
        a = rng.random((20, 6)) + 0.1
        b = rng.random((20, 6)) + 0.1
        scipy_fn = getattr(sp_distance, metric)
        ours = DISTANCE_FUNCTIONS[metric](a, b)
        expected = np.array([scipy_fn(x, y) for x, y in zip(a, b)])
        np.testing.assert_allclose(ours, expected, rtol=1e-8)

    def test_six_paper_metrics(self):
        assert len(PAPER_METRICS) == 6
        assert set(PAPER_METRICS) <= set(DISTANCE_FUNCTIONS)

    def test_identical_rows_give_zero(self):
        x = np.random.default_rng(1).random((5, 4)) + 0.5
        for metric in PAPER_METRICS:
            np.testing.assert_allclose(
                DISTANCE_FUNCTIONS[metric](x, x), 0.0, atol=1e-9
            )

    def test_pairwise_distance_indexing(self):
        embeddings = np.array([[0.0, 0.0], [3.0, 4.0], [1.0, 1.0]])
        out = pairwise_distance(
            "euclidean", embeddings, np.array([0]), np.array([1])
        )
        assert out[0] == pytest.approx(5.0)

    def test_unknown_metric(self):
        with pytest.raises(KeyError):
            pairwise_distance("hamming", np.ones((2, 2)), [0], [1])

    def test_zero_vector_safety(self):
        a = np.zeros((2, 3))
        for metric in PAPER_METRICS:
            assert np.all(np.isfinite(DISTANCE_FUNCTIONS[metric](a, a)))


class TestRocAuc:
    def test_perfect_separation(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc_score(labels, scores) == 1.0

    def test_inverted_scores(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc_score(labels, scores) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, 2000)
        scores = rng.random(2000)
        assert roc_auc_score(labels, scores) == pytest.approx(0.5, abs=0.05)

    def test_ties_averaged(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        assert roc_auc_score(labels, scores) == pytest.approx(0.5)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_auc_score(np.ones(5), np.random.default_rng(0).random(5))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            roc_auc_score(np.ones(3), np.ones(4))

    def test_roc_curve_endpoints(self):
        labels = np.array([0, 1, 0, 1, 1])
        scores = np.array([0.1, 0.9, 0.3, 0.8, 0.6])
        fpr, tpr, thresholds = roc_curve(labels, scores)
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_attack_advantage(self):
        assert attack_advantage(0.5) == 0.0
        assert attack_advantage(1.0) == 1.0
        assert attack_advantage(0.0) == 1.0  # anti-correlated is informative


class TestSamplePairs:
    @pytest.fixture
    def graph(self):
        return make_sbm_graph(60, 3, 24, 5.0, homophily=0.8, seed=0)

    def test_balanced(self, graph):
        left, right, labels = sample_pairs(graph.adjacency, seed=0)
        assert labels.sum() * 2 == labels.size

    def test_positives_are_edges(self, graph):
        left, right, labels = sample_pairs(graph.adjacency, seed=0)
        edges = graph.adjacency.edge_set()
        for u, v, is_edge in zip(left, right, labels):
            pair = (min(u, v), max(u, v))
            assert (pair in edges) == bool(is_edge)

    def test_num_pairs_caps(self, graph):
        left, right, labels = sample_pairs(graph.adjacency, num_pairs=10, seed=0)
        assert labels.size == 20

    def test_no_self_pairs(self, graph):
        left, right, _ = sample_pairs(graph.adjacency, seed=0)
        assert np.all(left != right)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            sample_pairs(CooAdjacency.empty(5))

    def test_deterministic(self, graph):
        a = sample_pairs(graph.adjacency, seed=3)
        b = sample_pairs(graph.adjacency, seed=3)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])


class TestStackEmbeddings:
    def test_concatenates(self):
        out = stack_embeddings([np.ones((4, 2)), np.zeros((4, 3))])
        assert out.shape == (4, 5)

    def test_single_passthrough(self):
        x = np.ones((4, 2))
        assert stack_embeddings([x]).shape == (4, 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            stack_embeddings([])


class TestLinkStealing:
    def test_smoothed_embeddings_leak(self):
        """Embeddings averaged over true neighbours must be attackable."""
        g = make_sbm_graph(80, 4, 32, 6.0, homophily=0.85, seed=1)
        from repro.graph import gcn_normalize

        smoothed = gcn_normalize(g.adjacency) @ g.features
        smoothed = gcn_normalize(g.adjacency) @ smoothed
        result = link_stealing_attack(smoothed, g.adjacency, victim="org", seed=0)
        assert result.mean_auc() > 0.75

    def test_random_embeddings_do_not_leak(self):
        g = make_sbm_graph(80, 4, 32, 6.0, homophily=0.85, seed=1)
        noise = np.random.default_rng(0).random((80, 16))
        result = link_stealing_attack(noise, g.adjacency, seed=0)
        assert abs(result.mean_auc() - 0.5) < 0.1

    def test_accepts_embedding_list(self):
        g = make_sbm_graph(50, 3, 16, 5.0, seed=2)
        layers = [np.random.default_rng(i).random((50, 4)) for i in range(3)]
        result = link_stealing_attack(layers, g.adjacency, seed=0)
        assert set(result.auc) == set(PAPER_METRICS)

    def test_node_count_mismatch_rejected(self):
        g = make_sbm_graph(50, 3, 16, 5.0, seed=2)
        with pytest.raises(ValueError):
            link_stealing_attack(np.ones((10, 4)), g.adjacency)

    def test_best_metric(self):
        g = make_sbm_graph(60, 3, 24, 5.0, homophily=0.9, seed=3)
        from repro.graph import gcn_normalize

        smoothed = gcn_normalize(g.adjacency) @ g.features
        result = link_stealing_attack(smoothed, g.adjacency, seed=0)
        metric, auc = result.best_metric()
        assert auc == max(result.auc.values())

    def test_custom_metric_subset(self):
        g = make_sbm_graph(40, 2, 16, 4.0, seed=4)
        result = link_stealing_attack(
            g.features, g.adjacency, metrics=("cosine",), seed=0
        )
        assert list(result.auc) == ["cosine"]
