"""CooAdjacency tests: construction, invariants, conversions, memory."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import CooAdjacency


@pytest.fixture
def triangle():
    """3-node triangle graph."""
    return CooAdjacency.from_edge_list(3, [(0, 1), (1, 2), (0, 2)])


class TestConstruction:
    def test_from_edge_list_symmetrizes(self, triangle):
        assert triangle.num_entries == 6
        assert triangle.num_edges == 3
        assert triangle.is_symmetric()

    def test_from_edge_list_deduplicates(self):
        adj = CooAdjacency.from_edge_list(3, [(0, 1), (1, 0), (0, 1)])
        assert adj.num_edges == 1

    def test_from_edge_list_drops_self_loops(self):
        adj = CooAdjacency.from_edge_list(3, [(0, 0), (1, 2)])
        assert adj.num_edges == 1

    def test_asymmetric_option(self):
        adj = CooAdjacency.from_edge_list(3, [(0, 1)], symmetrize=False)
        assert adj.num_entries == 1
        assert not adj.is_symmetric()

    def test_from_scipy_roundtrip(self, triangle):
        again = CooAdjacency.from_scipy(triangle.to_scipy())
        assert again.edge_set() == triangle.edge_set()

    def test_from_scipy_rejects_rectangular(self):
        with pytest.raises(ValueError):
            CooAdjacency.from_scipy(sp.csr_matrix(np.ones((2, 3))))

    def test_empty(self):
        adj = CooAdjacency.empty(5)
        assert adj.num_edges == 0
        assert adj.num_entries == 0
        assert adj.density() == 0.0

    def test_rejects_out_of_range_indices(self):
        with pytest.raises(ValueError):
            CooAdjacency(2, np.array([0]), np.array([5]))
        with pytest.raises(ValueError):
            CooAdjacency(2, np.array([-1]), np.array([0]))

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            CooAdjacency(3, np.array([0, 1]), np.array([1]))
        with pytest.raises(ValueError):
            CooAdjacency(3, np.array([0]), np.array([1]), values=np.ones(2))

    def test_default_values_are_ones(self, triangle):
        np.testing.assert_array_equal(triangle.values, np.ones(6))


class TestDerivedQuantities:
    def test_degrees(self, triangle):
        np.testing.assert_array_equal(triangle.degrees(), [2.0, 2.0, 2.0])

    def test_degrees_weighted(self):
        adj = CooAdjacency(2, np.array([0]), np.array([1]), values=np.array([2.5]))
        np.testing.assert_array_equal(adj.degrees(), [2.5, 0.0])

    def test_density_of_complete_graph(self, triangle):
        assert triangle.density() == pytest.approx(1.0)

    def test_density_single_node(self):
        assert CooAdjacency.empty(1).density() == 0.0

    def test_edge_set(self, triangle):
        assert triangle.edge_set() == {(0, 1), (1, 2), (0, 2)}

    def test_to_dense_matches_scipy(self, triangle):
        np.testing.assert_array_equal(triangle.to_dense(), triangle.to_scipy().toarray())

    def test_to_csr_is_csr(self, triangle):
        assert sp.issparse(triangle.to_csr())
        assert triangle.to_csr().format == "csr"

    def test_num_edges_counts_self_loops_once(self):
        # Regression: with L self-loop entries the old formula returned
        # E + L + L//2 instead of E + L. Here E = 1 (edge 0-1, stored
        # twice) and L = 4 (loops at 0, 1, 2, 3).
        adj = CooAdjacency(
            4,
            np.array([0, 1, 1, 2, 0, 3]),
            np.array([1, 0, 1, 2, 0, 3]),
        )
        assert adj.num_edges == 5

    def test_num_edges_two_self_loops(self):
        adj = CooAdjacency(
            3,
            np.array([0, 0, 1, 2, 1, 2]),
            np.array([0, 1, 0, 2, 2, 1]),
        )
        assert adj.num_edges == 4  # (0,1), (1,2) + loops at 0 and 2

class TestMemoisedDerivations:
    def test_csr_is_cached_and_matches_fresh_copy(self, triangle):
        first = triangle.csr()
        assert first is triangle.csr()  # same shared object
        assert (first != triangle.to_csr()).nnz == 0
        assert triangle.to_csr() is not triangle.to_csr()  # copies stay fresh

    def test_degrees_cached_and_read_only(self, triangle):
        deg = triangle.degrees()
        assert deg is triangle.degrees()
        with pytest.raises(ValueError):
            deg[0] = 99.0

    def test_gcn_normalized_matches_uncached_formula(self, triangle):
        adj = triangle.to_csr() + sp.identity(3, format="csr")
        inv_sqrt = sp.diags(1.0 / np.sqrt(np.asarray(adj.sum(axis=1)).ravel()))
        expected = (inv_sqrt @ adj @ inv_sqrt).toarray()
        np.testing.assert_allclose(triangle.gcn_normalized().toarray(), expected)
        assert triangle.gcn_normalized() is triangle.gcn_normalized()

    def test_row_normalized_rows_sum_to_one(self, triangle):
        rows = np.asarray(triangle.row_normalized().sum(axis=1)).ravel()
        np.testing.assert_allclose(rows, 1.0)

    def test_pickle_drops_derivation_cache(self, triangle):
        import pickle

        triangle.csr()
        triangle.degrees()
        clone = pickle.loads(pickle.dumps(triangle))
        assert clone._derived == {}
        np.testing.assert_array_equal(clone.rows, triangle.rows)
        np.testing.assert_array_equal(clone.degrees(), triangle.degrees())


class TestMemoryAccounting:
    def test_coo_memory_formula(self, triangle):
        # 6 entries × (2×8 idx + 8 val) + 3 nodes × 8 degree cache
        assert triangle.memory_bytes() == 6 * 24 + 3 * 8

    def test_dense_memory_formula(self, triangle):
        assert triangle.dense_memory_bytes() == 9 * 8
        assert triangle.dense_memory_bytes(value_bytes=4) == 9 * 4

    def test_coo_beats_dense_for_sparse_graphs(self):
        n = 1000
        adj = CooAdjacency.from_edge_list(n, [(i, (i + 1) % n) for i in range(n)])
        assert adj.memory_bytes() < adj.dense_memory_bytes() / 100

    def test_custom_index_bytes(self, triangle):
        assert triangle.memory_bytes(index_bytes=4, value_bytes=4) == 6 * 12 + 3 * 4
