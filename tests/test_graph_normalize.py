"""Adjacency normalisation tests: symmetric GCN norm, row norm, features."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    CooAdjacency,
    gcn_normalize,
    normalize_features,
    row_normalize,
)


@pytest.fixture
def path_graph():
    return CooAdjacency.from_edge_list(3, [(0, 1), (1, 2)])


class TestGcnNormalize:
    def test_matches_closed_form(self, path_graph):
        a = path_graph.to_dense() + np.eye(3)
        d_inv_sqrt = np.diag(1.0 / np.sqrt(a.sum(axis=1)))
        expected = d_inv_sqrt @ a @ d_inv_sqrt
        np.testing.assert_allclose(gcn_normalize(path_graph).toarray(), expected)

    def test_symmetric_output(self, path_graph):
        norm = gcn_normalize(path_graph).toarray()
        np.testing.assert_allclose(norm, norm.T)

    def test_without_self_loops(self, path_graph):
        norm = gcn_normalize(path_graph, add_self_loops=False).toarray()
        assert np.all(np.diag(norm) == 0.0)

    def test_isolated_node_row_is_zero_without_self_loops(self):
        adj = CooAdjacency.from_edge_list(3, [(0, 1)])
        norm = gcn_normalize(adj, add_self_loops=False).toarray()
        np.testing.assert_array_equal(norm[2], np.zeros(3))
        assert np.all(np.isfinite(norm))

    def test_isolated_node_self_loop_weight_one(self):
        adj = CooAdjacency.from_edge_list(3, [(0, 1)])
        norm = gcn_normalize(adj).toarray()
        assert norm[2, 2] == pytest.approx(1.0)

    def test_accepts_scipy_input(self, path_graph):
        from_scipy = gcn_normalize(path_graph.to_csr())
        from_coo = gcn_normalize(path_graph)
        np.testing.assert_allclose(from_scipy.toarray(), from_coo.toarray())

    def test_spectral_radius_at_most_one(self):
        rng = np.random.default_rng(0)
        edges = [(rng.integers(20), rng.integers(20)) for _ in range(40)]
        adj = CooAdjacency.from_edge_list(20, edges)
        norm = gcn_normalize(adj).toarray()
        eigenvalues = np.linalg.eigvalsh(norm)
        assert eigenvalues.max() <= 1.0 + 1e-9


class TestRowNormalize:
    def test_rows_sum_to_one(self, path_graph):
        norm = row_normalize(path_graph).toarray()
        np.testing.assert_allclose(norm.sum(axis=1), np.ones(3))

    def test_isolated_node_without_self_loops(self):
        adj = CooAdjacency.from_edge_list(3, [(0, 1)])
        norm = row_normalize(adj, add_self_loops=False).toarray()
        np.testing.assert_array_equal(norm[2], np.zeros(3))

    def test_mean_aggregation_semantics(self):
        adj = CooAdjacency.from_edge_list(3, [(0, 1), (0, 2)])
        norm = row_normalize(adj, add_self_loops=False)
        x = np.array([[0.0], [2.0], [4.0]])
        out = norm @ x
        assert out[0, 0] == pytest.approx(3.0)  # mean of neighbours 1,2


class TestNormalizeFeatures:
    def test_rows_sum_to_one(self):
        x = np.array([[1.0, 3.0], [2.0, 2.0]])
        out = normalize_features(x)
        np.testing.assert_allclose(np.abs(out).sum(axis=1), np.ones(2))

    def test_zero_rows_untouched(self):
        x = np.array([[0.0, 0.0], [1.0, 1.0]])
        out = normalize_features(x)
        np.testing.assert_array_equal(out[0], [0.0, 0.0])
        assert np.all(np.isfinite(out))

    def test_negative_values_use_l1(self):
        out = normalize_features(np.array([[-1.0, 1.0]]))
        np.testing.assert_allclose(out, [[-0.5, 0.5]])
