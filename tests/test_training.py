"""Training loop tests: convergence, early stopping, frozen-backbone rule."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import gcn_normalize
from repro.models import GCNBackbone, make_rectifier
from repro.training import (
    TrainConfig,
    accuracy,
    confusion_matrix,
    train_node_classifier,
    train_rectifier,
)


class TestMetrics:
    def test_accuracy_from_labels(self):
        assert accuracy(np.array([0, 1, 1]), np.array([0, 1, 0])) == pytest.approx(2 / 3)

    def test_accuracy_from_logits(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8]])
        assert accuracy(logits, np.array([0, 1])) == 1.0

    def test_accuracy_with_index(self):
        preds = np.array([0, 1, 0, 1])
        labels = np.array([0, 0, 0, 0])
        assert accuracy(preds, labels, index=np.array([0, 2])) == 1.0

    def test_accuracy_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_confusion_matrix(self):
        cm = confusion_matrix(np.array([0, 1, 1]), np.array([0, 0, 1]), 2)
        np.testing.assert_array_equal(cm, [[1, 1], [0, 1]])

    def test_confusion_matrix_from_logits(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0]])
        cm = confusion_matrix(logits, np.array([0, 1]), 2)
        np.testing.assert_array_equal(cm, np.eye(2))


class TestTrainConfig:
    def test_rejects_zero_epochs(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)

    def test_rejects_zero_patience(self):
        with pytest.raises(ValueError):
            TrainConfig(patience=0)


class TestTrainNodeClassifier:
    def test_learns_tiny_graph(self, tiny_graph, tiny_split):
        adj = gcn_normalize(tiny_graph.adjacency)
        model = GCNBackbone(tiny_graph.num_features, (16, 3), seed=0)
        result = train_node_classifier(
            model, tiny_graph.features, adj, tiny_graph.labels, tiny_split,
            TrainConfig(epochs=60, patience=30),
        )
        assert result.test_accuracy > 0.6
        assert result.loss_history[-1] < result.loss_history[0]

    def test_early_stopping_triggers(self, tiny_graph, tiny_split):
        adj = gcn_normalize(tiny_graph.adjacency)
        model = GCNBackbone(tiny_graph.num_features, (16, 3), seed=0)
        result = train_node_classifier(
            model, tiny_graph.features, adj, tiny_graph.labels, tiny_split,
            TrainConfig(epochs=500, patience=5),
        )
        assert result.epochs_run < 500

    def test_restores_best_weights(self, tiny_graph, tiny_split):
        adj = gcn_normalize(tiny_graph.adjacency)
        model = GCNBackbone(tiny_graph.num_features, (16, 3), seed=0)
        result = train_node_classifier(
            model, tiny_graph.features, adj, tiny_graph.labels, tiny_split,
            TrainConfig(epochs=40, patience=40),
        )
        model.eval()
        from repro import nn

        val_acc = accuracy(
            model(nn.Tensor(tiny_graph.features), adj).data,
            tiny_graph.labels,
            tiny_split.val,
        )
        assert val_acc == pytest.approx(result.best_val_accuracy)

    def test_histories_recorded(self, tiny_graph, tiny_split):
        adj = gcn_normalize(tiny_graph.adjacency)
        model = GCNBackbone(tiny_graph.num_features, (8, 3), seed=0)
        result = train_node_classifier(
            model, tiny_graph.features, adj, tiny_graph.labels, tiny_split,
            TrainConfig(epochs=10, patience=10),
        )
        assert len(result.loss_history) == result.epochs_run
        assert len(result.val_history) == result.epochs_run

    def test_model_left_in_eval_mode(self, tiny_graph, tiny_split):
        adj = gcn_normalize(tiny_graph.adjacency)
        model = GCNBackbone(tiny_graph.num_features, (8, 3), seed=0)
        train_node_classifier(
            model, tiny_graph.features, adj, tiny_graph.labels, tiny_split,
            TrainConfig(epochs=5, patience=5),
        )
        assert not model.training


class TestTrainRectifier:
    def _trained_backbone(self, graph, split, adj):
        backbone = GCNBackbone(graph.num_features, (16, 8, 3), seed=0)
        train_node_classifier(
            backbone, graph.features, adj, graph.labels, split,
            TrainConfig(epochs=40, patience=20),
        )
        return backbone

    def test_backbone_weights_untouched(self, tiny_graph, tiny_split):
        from repro.substitute import KnnGraphBuilder

        sub_adj = gcn_normalize(KnnGraphBuilder(2)(tiny_graph.features))
        real_adj = gcn_normalize(tiny_graph.adjacency)
        backbone = self._trained_backbone(tiny_graph, tiny_split, sub_adj)
        before = backbone.state_dict()
        rectifier = make_rectifier("parallel", (16, 8, 3), (16, 8, 3), seed=1)
        train_rectifier(
            rectifier, backbone, tiny_graph.features, sub_adj, real_adj,
            tiny_graph.labels, tiny_split, TrainConfig(epochs=30, patience=15),
        )
        after = backbone.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_rectifier_improves_on_backbone(self, tiny_graph, tiny_split):
        """The core GNNVault claim at miniature scale: real edges help."""
        from repro.substitute import RandomGraphBuilder

        # deliberately bad substitute so the backbone underperforms
        sub = RandomGraphBuilder(num_edges=tiny_graph.num_edges, seed=0)(
            tiny_graph.features
        )
        sub_adj = gcn_normalize(sub)
        real_adj = gcn_normalize(tiny_graph.adjacency)
        backbone = self._trained_backbone(tiny_graph, tiny_split, sub_adj)
        from repro import nn

        backbone.eval()
        p_bb = accuracy(
            backbone(nn.Tensor(tiny_graph.features), sub_adj).data,
            tiny_graph.labels,
            tiny_split.test,
        )
        rectifier = make_rectifier("parallel", (16, 8, 3), (16, 8, 3), seed=1)
        result = train_rectifier(
            rectifier, backbone, tiny_graph.features, sub_adj, real_adj,
            tiny_graph.labels, tiny_split, TrainConfig(epochs=60, patience=30),
        )
        assert result.test_accuracy > p_bb

    @pytest.mark.parametrize("scheme", ["parallel", "series", "cascaded"])
    def test_all_schemes_train(self, tiny_graph, tiny_split, scheme):
        from repro.substitute import KnnGraphBuilder

        sub_adj = gcn_normalize(KnnGraphBuilder(2)(tiny_graph.features))
        real_adj = gcn_normalize(tiny_graph.adjacency)
        backbone = self._trained_backbone(tiny_graph, tiny_split, sub_adj)
        rectifier = make_rectifier(scheme, (16, 8, 3), (16, 8, 3), seed=1)
        result = train_rectifier(
            rectifier, backbone, tiny_graph.features, sub_adj, real_adj,
            tiny_graph.labels, tiny_split, TrainConfig(epochs=40, patience=20),
        )
        assert result.test_accuracy > 0.5
