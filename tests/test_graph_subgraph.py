"""Subgraph extraction + per-node secure query tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.deploy import SecureInferenceSession
from repro.graph import (
    CooAdjacency,
    extract_subgraph,
    gcn_normalize,
    k_hop_neighbourhood,
)
from repro.models import GCNBackbone
from repro.tee import EnclaveConfig


@pytest.fixture
def path():
    """0-1-2-3-4 path graph."""
    return CooAdjacency.from_edge_list(5, [(0, 1), (1, 2), (2, 3), (3, 4)])


class TestKHopNeighbourhood:
    def test_zero_hops_is_targets(self, path):
        np.testing.assert_array_equal(k_hop_neighbourhood(path, [2], 0), [2])

    def test_one_hop(self, path):
        np.testing.assert_array_equal(k_hop_neighbourhood(path, [2], 1), [1, 2, 3])

    def test_two_hops(self, path):
        np.testing.assert_array_equal(
            k_hop_neighbourhood(path, [2], 2), [0, 1, 2, 3, 4]
        )

    def test_multiple_targets_union(self, path):
        np.testing.assert_array_equal(
            k_hop_neighbourhood(path, [0, 4], 1), [0, 1, 3, 4]
        )

    def test_out_of_range_target(self, path):
        with pytest.raises(ValueError):
            k_hop_neighbourhood(path, [9], 1)

    def test_empty_targets(self, path):
        with pytest.raises(ValueError):
            k_hop_neighbourhood(path, [], 1)

    def test_negative_hops(self, path):
        with pytest.raises(ValueError):
            k_hop_neighbourhood(path, [0], -1)


class TestExtractSubgraph:
    def test_induced_edges(self, path):
        sub = extract_subgraph(path, [2], hops=1)
        # nodes 1,2,3 with edges (1,2),(2,3) locally re-indexed
        assert sub.num_nodes == 3
        assert sub.adjacency.edge_set() == {(0, 1), (1, 2)}

    def test_targets_local_positions(self, path):
        sub = extract_subgraph(path, [2], hops=1)
        assert sub.nodes[sub.targets_local[0]] == 2

    def test_global_degrees_include_cut_edges(self, path):
        sub = extract_subgraph(path, [2], hops=1)
        # node 1 has global degree 2 (+1 self loop) even though its edge to
        # node 0 was cut from the induced subgraph
        idx = list(sub.nodes).index(1)
        assert sub.global_degrees[idx] == 3.0

    def test_restrict_features(self, path):
        sub = extract_subgraph(path, [2], hops=1)
        features = np.arange(10.0).reshape(5, 2)
        np.testing.assert_array_equal(sub.restrict(features), features[[1, 2, 3]])

    def test_restrict_rejects_short_matrix(self, path):
        sub = extract_subgraph(path, [4], hops=0)
        with pytest.raises(ValueError):
            sub.restrict(np.ones((2, 2)))

    def test_lift_labels(self, path):
        sub = extract_subgraph(path, [2, 3], hops=0)
        mapping = sub.lift_labels(np.array([7, 9]))
        assert mapping == {2: 7, 3: 9}


class TestExactSubgraphInference:
    def test_target_embeddings_match_full_graph(self):
        """k-layer GCN on the k-hop subgraph with global-degree
        normalisation reproduces the full-graph embedding at the target."""
        rng = np.random.default_rng(0)
        edges = [(int(rng.integers(30)), int(rng.integers(30))) for _ in range(60)]
        adjacency = CooAdjacency.from_edge_list(30, edges)
        features = rng.random((30, 8))
        model = GCNBackbone(8, (6, 4), seed=1)
        model.eval()

        full = model.embeddings(features, gcn_normalize(adjacency))[-1]
        target = 5
        sub = extract_subgraph(adjacency, [target], hops=model.num_layers)
        local = model.embeddings(sub.restrict(features), sub.normalized_adjacency())[-1]
        pos = list(sub.nodes).index(target)
        np.testing.assert_allclose(local[pos], full[target], rtol=1e-9)

    def test_induced_degree_normalisation_would_differ(self):
        """Sanity check on why global degrees matter: induced-degree
        normalisation perturbs the target embedding on boundary-heavy
        graphs."""
        adjacency = CooAdjacency.from_edge_list(
            6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (1, 4)]
        )
        features = np.eye(6)
        model = GCNBackbone(6, (4, 3), seed=2)
        model.eval()
        full = model.embeddings(features, gcn_normalize(adjacency))[-1]
        sub = extract_subgraph(adjacency, [2], hops=2)
        induced_norm = gcn_normalize(sub.adjacency)
        local = model.embeddings(sub.restrict(features), induced_norm)[-1]
        pos = list(sub.nodes).index(2)
        assert not np.allclose(local[pos], full[2])


def _reference_extract_subgraph(adjacency, targets, hops):
    """The pre-vectorisation implementation (Python sets/dicts/loops).

    Kept as the executable specification: the vectorised fast path must
    produce identical output on every field.
    """
    targets = np.asarray(list(targets), dtype=np.int64)
    csr = adjacency.to_csr()
    frontier = np.unique(targets)
    visited = set(frontier.tolist())
    for _ in range(hops):
        if frontier.size == 0:
            break
        neighbours = csr[frontier].indices
        fresh = [n for n in np.unique(neighbours) if n not in visited]
        visited.update(fresh)
        frontier = np.asarray(fresh, dtype=np.int64)
    nodes = np.asarray(sorted(visited), dtype=np.int64)
    position = {int(node): i for i, node in enumerate(nodes)}
    keep = np.isin(adjacency.rows, nodes) & np.isin(adjacency.cols, nodes)
    rows = np.asarray([position[int(r)] for r in adjacency.rows[keep]], dtype=np.int64)
    cols = np.asarray([position[int(c)] for c in adjacency.cols[keep]], dtype=np.int64)
    targets_local = np.asarray(
        [position[int(t)] for t in np.unique(targets)], dtype=np.int64
    )
    deg = np.zeros(adjacency.num_nodes)
    np.add.at(deg, adjacency.rows, adjacency.values)
    return (
        nodes,
        rows,
        cols,
        adjacency.values[keep],
        targets_local,
        deg[nodes] + 1.0,
    )


class TestVectorizedExtractionEquivalence:
    """Property-style: the fast path equals the reference on random graphs."""

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_reference_on_random_sbm(self, seed):
        from repro.graph import make_sbm_graph

        rng = np.random.default_rng(seed)
        graph = make_sbm_graph(
            num_nodes=int(rng.integers(40, 120)),
            num_classes=int(rng.integers(2, 5)),
            num_features=8,
            avg_degree=float(rng.uniform(2.0, 8.0)),
            homophily=float(rng.uniform(0.5, 0.95)),
            seed=seed,
        )
        adjacency = graph.adjacency
        num_targets = int(rng.integers(1, 6))
        targets = rng.choice(adjacency.num_nodes, size=num_targets, replace=False)
        hops = int(rng.integers(0, 4))

        sub = extract_subgraph(adjacency, targets, hops)
        nodes, rows, cols, values, targets_local, degrees = (
            _reference_extract_subgraph(adjacency, targets, hops)
        )
        np.testing.assert_array_equal(sub.nodes, nodes)
        np.testing.assert_array_equal(sub.adjacency.rows, rows)
        np.testing.assert_array_equal(sub.adjacency.cols, cols)
        np.testing.assert_array_equal(sub.adjacency.values, values)
        np.testing.assert_array_equal(sub.targets_local, targets_local)
        np.testing.assert_array_equal(sub.global_degrees, degrees)
        np.testing.assert_array_equal(
            k_hop_neighbourhood(adjacency, targets, hops), nodes
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_weighted_self_loop_graphs(self, seed):
        """Loops and non-unit weights survive the vectorised keep/remap."""
        rng = np.random.default_rng(100 + seed)
        n = 25
        u = rng.integers(0, n, size=60)
        v = rng.integers(0, n, size=60)
        rows = np.concatenate([u, v, np.arange(n)])
        cols = np.concatenate([v, u, np.arange(n)])
        values = np.concatenate([w := rng.random(60), w, np.ones(n)])
        adjacency = CooAdjacency(n, rows, cols, values)
        targets = [int(rng.integers(n))]
        sub = extract_subgraph(adjacency, targets, 2)
        ref = _reference_extract_subgraph(adjacency, targets, 2)
        np.testing.assert_array_equal(sub.nodes, ref[0])
        np.testing.assert_array_equal(sub.adjacency.rows, ref[1])
        np.testing.assert_array_equal(sub.adjacency.cols, ref[2])
        np.testing.assert_array_equal(sub.adjacency.values, ref[3])


class TestPredictNodes:
    def test_matches_full_predict(self, trained_vault):
        run = trained_vault
        session = SecureInferenceSession(
            run.backbone,
            run.rectifiers["parallel"],
            run.substitute,
            run.graph.adjacency,
        )
        full_labels, _ = session.predict(run.graph.features)
        targets = [0, 7, 42]
        labels, profile = session.predict_nodes(run.graph.features, targets)
        np.testing.assert_array_equal(labels, full_labels[targets])

    def test_enclave_memory_scales_with_neighbourhood(self, trained_vault):
        run = trained_vault
        # Plan cache disabled: this test compares per-ECALL scratch, and
        # cached receptive-field plans are deliberately enclave-resident.
        session = SecureInferenceSession(
            run.backbone,
            run.rectifiers["parallel"],
            run.substitute,
            run.graph.adjacency,
            enclave_config=EnclaveConfig(plan_cache_capacity=0),
        )
        _, full_profile = session.predict(run.graph.features)
        _, node_profile = session.predict_nodes(run.graph.features, [3])
        assert node_profile.payload_bytes < full_profile.payload_bytes
        assert (
            node_profile.peak_enclave_memory_bytes
            <= full_profile.peak_enclave_memory_bytes
        )

    def test_label_order_follows_query(self, trained_vault):
        run = trained_vault
        session = SecureInferenceSession(
            run.backbone,
            run.rectifiers["series"],
            run.substitute,
            run.graph.adjacency,
        )
        a, _ = session.predict_nodes(run.graph.features, [5, 9])
        b, _ = session.predict_nodes(run.graph.features, [9, 5])
        np.testing.assert_array_equal(a, b[::-1])
