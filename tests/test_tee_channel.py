"""One-way channel tests: label-only egress, transfer accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SecurityViolation
from repro.tee import LabelOnlyResult, OneWayChannel, payload_num_bytes


class TestLabelOnlyResult:
    def test_accepts_integer_labels(self):
        result = LabelOnlyResult(np.array([0, 1, 2]))
        np.testing.assert_array_equal(result.labels, [0, 1, 2])

    def test_rejects_float_payload(self):
        with pytest.raises(SecurityViolation):
            LabelOnlyResult(np.array([0.1, 0.9]))

    def test_rejects_logit_matrix(self):
        with pytest.raises(SecurityViolation):
            LabelOnlyResult(np.random.default_rng(0).random((5, 3)))


class TestChannel:
    def test_push_and_drain(self):
        channel = OneWayChannel()
        channel.push(np.ones((4, 2)), description="emb0")
        items = channel._drain()
        assert len(items) == 1
        assert channel._drain() == []  # drained

    def test_publish_and_collect(self):
        channel = OneWayChannel()
        channel.publish(LabelOnlyResult(np.array([1, 0])))
        np.testing.assert_array_equal(channel.collect().labels, [1, 0])

    def test_collect_without_result_raises(self):
        with pytest.raises(SecurityViolation):
            OneWayChannel().collect()

    def test_publish_rejects_arrays(self):
        channel = OneWayChannel()
        with pytest.raises(SecurityViolation):
            channel.publish(np.ones(3))

    def test_publish_rejects_embedding_tuple(self):
        channel = OneWayChannel()
        with pytest.raises(SecurityViolation):
            channel.publish((np.ones(3), "logits"))

    def test_transfer_log_records_bytes(self):
        channel = OneWayChannel()
        payload = np.ones((10, 4))
        channel.push(payload, description="layer0")
        assert channel.total_bytes_in == payload.nbytes
        assert channel.transfer_log[0].description == "layer0"

    def test_total_accumulates(self):
        channel = OneWayChannel()
        channel.push(np.ones(4))
        channel.push(np.ones(6))
        assert channel.total_bytes_in == 10 * 8


class TestPayloadBytes:
    def test_ndarray(self):
        assert payload_num_bytes(np.ones((2, 3))) == 48

    def test_bytes(self):
        assert payload_num_bytes(b"abcd") == 4

    def test_nested_list(self):
        assert payload_num_bytes([np.ones(2), np.ones(3)]) == 40

    def test_dict(self):
        assert payload_num_bytes({"a": np.ones(2)}) == 16

    def test_object_with_num_bytes(self):
        class Blob:
            num_bytes = 123

        assert payload_num_bytes(Blob()) == 123

    def test_fallback_scalar(self):
        assert payload_num_bytes(7) == 8
