"""Perturbation-defense tests: mechanisms and the trade-off evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.defense import (
    GaussianNoiseDefense,
    LaplaceNoiseDefense,
    QuantizationDefense,
    TopKLogitDefense,
    evaluate_defense,
    make_defense,
    tradeoff_curve,
)
from repro.graph import gcn_normalize, make_sbm_graph


@pytest.fixture
def embedding():
    return np.random.default_rng(0).random((50, 8)) * 4.0 - 2.0


class TestGaussian:
    def test_zero_scale_identity(self, embedding):
        out = GaussianNoiseDefense(scale=0.0).apply(embedding)
        np.testing.assert_array_equal(out, embedding)

    def test_noise_magnitude_tracks_scale(self, embedding):
        small = GaussianNoiseDefense(scale=0.1, seed=1).apply(embedding)
        large = GaussianNoiseDefense(scale=2.0, seed=1).apply(embedding)
        assert np.abs(large - embedding).mean() > np.abs(small - embedding).mean()

    def test_deterministic_by_seed(self, embedding):
        a = GaussianNoiseDefense(scale=0.5, seed=3).apply(embedding)
        b = GaussianNoiseDefense(scale=0.5, seed=3).apply(embedding)
        np.testing.assert_array_equal(a, b)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            GaussianNoiseDefense(scale=-0.1)


class TestLaplace:
    def test_smaller_epsilon_more_noise(self, embedding):
        strong = LaplaceNoiseDefense(epsilon=0.1, seed=1).apply(embedding)
        weak = LaplaceNoiseDefense(epsilon=10.0, seed=1).apply(embedding)
        assert np.abs(strong - embedding).mean() > np.abs(weak - embedding).mean()

    def test_constant_embedding_unchanged(self):
        constant = np.ones((5, 3))
        out = LaplaceNoiseDefense(epsilon=1.0).apply(constant)
        np.testing.assert_array_equal(out, constant)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            LaplaceNoiseDefense(epsilon=0.0)


class TestQuantization:
    def test_level_count(self, embedding):
        out = QuantizationDefense(levels=4).apply(embedding)
        assert np.unique(out).size <= 4

    def test_range_preserved(self, embedding):
        out = QuantizationDefense(levels=8).apply(embedding)
        assert out.min() == pytest.approx(embedding.min())
        assert out.max() == pytest.approx(embedding.max())

    def test_constant_input(self):
        constant = np.full((4, 2), 3.0)
        np.testing.assert_array_equal(
            QuantizationDefense(levels=4).apply(constant), constant
        )

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            QuantizationDefense(levels=1)


class TestTopK:
    def test_keeps_topk_values(self):
        logits = np.array([[1.0, 5.0, 3.0], [2.0, 0.0, 7.0]])
        out = TopKLogitDefense(k=1).apply(logits)
        assert out[0, 1] == 5.0 and out[1, 2] == 7.0
        # others dropped to the row floor
        assert out[0, 0] == logits.min(axis=1)[0]

    def test_argmax_preserved(self, embedding):
        out = TopKLogitDefense(k=1).apply(embedding)
        np.testing.assert_array_equal(out.argmax(axis=1), embedding.argmax(axis=1))

    def test_k_wider_than_matrix_is_identity(self):
        logits = np.random.default_rng(0).random((4, 3))
        np.testing.assert_array_equal(TopKLogitDefense(k=5).apply(logits), logits)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TopKLogitDefense(k=0)


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("gaussian", GaussianNoiseDefense),
            ("laplace", LaplaceNoiseDefense),
            ("quantize", QuantizationDefense),
            ("topk", TopKLogitDefense),
        ],
    )
    def test_kinds(self, name, cls):
        assert isinstance(make_defense(name), cls)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_defense("blur")


class TestTradeoff:
    @pytest.fixture(scope="class")
    def victim(self):
        g = make_sbm_graph(100, 3, 32, 6.0, homophily=0.85, seed=4)
        adj = gcn_normalize(g.adjacency)
        smoothed = adj @ g.features
        smoothed = adj @ smoothed
        # logits layer: one column per class, aligned with labels
        logits = np.eye(3)[g.labels] * 3.0 + np.random.default_rng(0).normal(
            0, 0.4, (100, 3)
        )
        test_index = np.arange(50, 100)
        return g, [smoothed, logits], test_index

    def test_noise_reduces_attack_auc(self, victim):
        g, embeddings, test_index = victim
        clean = evaluate_defense(
            GaussianNoiseDefense(scale=0.0), embeddings, g.adjacency,
            g.labels, test_index, num_pairs=300,
        )
        noisy = evaluate_defense(
            GaussianNoiseDefense(scale=5.0, seed=1), embeddings, g.adjacency,
            g.labels, test_index, num_pairs=300,
        )
        assert noisy.attack_auc < clean.attack_auc

    def test_noise_costs_accuracy(self, victim):
        g, embeddings, test_index = victim
        clean = evaluate_defense(
            GaussianNoiseDefense(scale=0.0), embeddings, g.adjacency,
            g.labels, test_index, num_pairs=300,
        )
        noisy = evaluate_defense(
            GaussianNoiseDefense(scale=5.0, seed=1), embeddings, g.adjacency,
            g.labels, test_index, num_pairs=300,
        )
        assert noisy.accuracy <= clean.accuracy

    def test_curve_one_point_per_defense(self, victim):
        g, embeddings, test_index = victim
        defenses = [
            GaussianNoiseDefense(scale=s, seed=1) for s in (0.0, 1.0, 3.0)
        ]
        curve = tradeoff_curve(
            defenses, embeddings, g.adjacency, g.labels, test_index,
            num_pairs=200,
        )
        assert len(curve) == 3
        assert all(0.0 <= p.attack_auc <= 1.0 for p in curve)
