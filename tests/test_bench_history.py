"""Bench-history store and the rolling-window trend gate.

``benchmarks/history.py`` and ``benchmarks/check_regression.py`` are
plain scripts (not part of the ``repro`` package), so these tests load
them by path. The properties under test: records round-trip through the
append-only JSONL, the reader survives corrupt lines, and the trend
gate's three regimes (not-enough-history, healthy, drifted) map to the
right exit codes.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "benchmarks" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    # check_regression does `from history import ...` at call time
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    try:
        spec.loader.exec_module(module)
    finally:
        sys.path.pop(0)
    return module


@pytest.fixture(scope="module")
def history():
    return _load("history")


@pytest.fixture(scope="module")
def check_regression():
    return _load("check_regression")


class TestHistoryStore:
    def test_append_and_read_round_trip(self, history, tmp_path):
        path = tmp_path / "history.jsonl"
        record = history.append_history(
            "serving_fast_path", {"warm_over_uncached": 15.2}, path=path
        )
        assert record["benchmark"] == "serving_fast_path"
        assert record["git_sha"]  # never empty, "unknown" at worst
        assert "T" in record["timestamp"]  # ISO-8601
        back = history.read_history(path)
        assert back == [record]

    def test_append_creates_parent_directories(self, history, tmp_path):
        path = tmp_path / "deep" / "nested" / "history.jsonl"
        history.append_history("b", {"m": 1.0}, path=path)
        assert path.exists()

    def test_reader_skips_corrupt_and_alien_lines(self, history, tmp_path):
        path = tmp_path / "history.jsonl"
        history.append_history("a", {"m": 1.0}, path=path)
        with path.open("a") as fh:
            fh.write("{not json\n")
            fh.write("\n")
            fh.write(json.dumps(["a", "list"]) + "\n")
            fh.write(json.dumps({"no": "metrics"}) + "\n")
        history.append_history("a", {"m": 2.0}, path=path)
        records = history.read_history(path)
        assert [r["metrics"]["m"] for r in records] == [1.0, 2.0]

    def test_benchmark_filter(self, history, tmp_path):
        path = tmp_path / "history.jsonl"
        history.append_history("a", {"m": 1.0}, path=path)
        history.append_history("b", {"m": 2.0}, path=path)
        assert len(history.read_history(path, benchmark="a")) == 1

    def test_missing_file_reads_empty(self, history, tmp_path):
        assert history.read_history(tmp_path / "absent.jsonl") == []

    def test_metric_series_skips_absent_and_bad_values(self, history):
        records = [
            {"metrics": {"m": 1.0}},
            {"metrics": {"other": 2.0}},
            {"metrics": {"m": "not-a-number"}},
            {"metrics": {"m": 3}},
        ]
        assert history.metric_series(records, "m") == [1.0, 3.0]


class TestTrendGate:
    def _seed(self, history, path, values):
        for value in values:
            history.append_history(
                "serving_fast_path", {"warm_over_uncached": value}, path=path
            )

    def test_not_enough_history_passes(self, check_regression, tmp_path,
                                       capsys):
        path = tmp_path / "history.jsonl"
        code = check_regression.trend(path, window=8, min_runs=3,
                                      max_drift=0.20)
        assert code == 0
        assert "not yet established" in capsys.readouterr().out

    def test_healthy_trend_passes(self, history, check_regression, tmp_path):
        path = tmp_path / "history.jsonl"
        self._seed(history, path, [15.0, 15.5, 14.8, 15.2])
        assert check_regression.trend(path, window=8, min_runs=3,
                                      max_drift=0.20) == 0

    def test_drift_beyond_budget_fails(self, history, check_regression,
                                       tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        self._seed(history, path, [15.0, 15.5, 14.8, 15.2, 8.0])
        assert check_regression.trend(path, window=8, min_runs=3,
                                      max_drift=0.20) == 1
        assert "TREND FAIL" in capsys.readouterr().err

    def test_one_noisy_prior_run_does_not_skew_the_median(
            self, history, check_regression, tmp_path):
        path = tmp_path / "history.jsonl"
        # one collapsed run inside the window must not drag the
        # reference down — the median absorbs it
        self._seed(history, path, [15.0, 1.0, 15.5, 14.8, 15.2])
        assert check_regression.trend(path, window=8, min_runs=3,
                                      max_drift=0.20) == 0

    def test_unusable_history_exits_two(self, history, check_regression,
                                        tmp_path):
        path = tmp_path / "history.jsonl"
        self._seed(history, path, [0.0, 0.0, 0.0, 1.0])
        assert check_regression.trend(path, window=8, min_runs=3,
                                      max_drift=0.20) == 2

    def test_main_smoke_with_trend_on_committed_files(self, check_regression):
        # the committed BENCH_serving.json + seed history must pass the
        # exact gate CI runs (structure smoke + trend)
        code = check_regression.main([
            "--smoke", "--trend",
            "--fresh", str(REPO_ROOT / "BENCH_serving.json"),
            "--history",
            str(REPO_ROOT / "benchmarks" / "results" / "history.jsonl"),
        ])
        assert code == 0
