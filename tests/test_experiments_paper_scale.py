"""Paper-scale driver tests (short training budgets)."""

from __future__ import annotations

import pytest

from repro.experiments import run_paper_scale
from repro.models import ModelPreset
from repro.training import TrainConfig


class TestPaperScaleDriver:
    @pytest.fixture(scope="class")
    def result(self):
        # Tiny preset and budget: this test checks plumbing, not accuracy.
        return run_paper_scale(
            "cora",
            scheme="series",
            num_clusters=6,
            train_config=TrainConfig(epochs=8, patience=8),
            preset=ModelPreset("PS", (16, 8), (16, 8)),
        )

    def test_full_scale_dimensions(self, result):
        assert result.num_nodes == 2708
        assert result.num_features == 1433

    def test_metrics_in_range(self, result):
        for value in (result.p_org, result.p_bb, result.p_rec):
            assert 0.0 <= value <= 1.0

    def test_scheme_recorded(self, result):
        assert result.scheme == "series"
