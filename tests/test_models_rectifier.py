"""Rectifier tests: the three communication schemes and their θ counts."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.graph import gcn_normalize
from repro.models import (
    M1,
    M3,
    CascadedRectifier,
    GCNBackbone,
    ParallelRectifier,
    SeriesRectifier,
    make_rectifier,
)


@pytest.fixture
def setup(tiny_graph):
    adj = gcn_normalize(tiny_graph.adjacency)
    backbone = GCNBackbone(tiny_graph.num_features, (16, 8, 3), seed=0)
    backbone.eval()
    outs = backbone.forward_with_intermediates(tiny_graph.features, adj)
    return tiny_graph, adj, backbone, outs


class TestParallel:
    def test_output_shape(self, setup):
        graph, adj, backbone, outs = setup
        rect = ParallelRectifier((16, 8, 3), (16, 8, 3), seed=1)
        assert rect(outs, adj).shape == (60, 3)

    def test_consumes_all_aligned_layers(self):
        rect = ParallelRectifier((16, 8, 3), (16, 8, 3))
        assert rect.consumed_layers() == (0, 1, 2)

    def test_input_dims_concat_previous(self):
        rect = ParallelRectifier((16, 8, 3), (16, 8, 3))
        assert rect.input_dims() == (16, 8 + 16, 3 + 8)

    def test_shallower_than_backbone(self):
        rect = ParallelRectifier((32, 16, 8, 4), (16, 8, 4))
        assert rect.consumed_layers() == (0, 1, 2)
        assert rect.input_dims() == (32, 16 + 16, 8 + 8)

    def test_deeper_than_backbone_rejected(self):
        with pytest.raises(ValueError):
            ParallelRectifier((16, 3), (16, 8, 3))

    def test_too_few_embeddings_rejected(self, setup):
        graph, adj, backbone, outs = setup
        rect = ParallelRectifier((16, 8, 3), (16, 8, 3))
        with pytest.raises(ValueError):
            rect(outs[:2], adj)

    def test_theta_matches_paper_m1(self):
        """Table II parallel M1: θ_rec = 0.022 M (Cora, C=7)."""
        rect = M1.build_rectifier("parallel", 7)
        assert rect.num_parameters() / 1e6 == pytest.approx(0.022, abs=0.001)

    def test_theta_matches_paper_m3(self):
        """Table II parallel M3: θ_rec = 0.021 M (Computer, C=10)."""
        rect = M3.build_rectifier("parallel", 10)
        assert rect.num_parameters() / 1e6 == pytest.approx(0.021, abs=0.001)


class TestCascaded:
    def test_output_shape(self, setup):
        graph, adj, backbone, outs = setup
        rect = CascadedRectifier((16, 8, 3), (16, 8, 3), seed=1)
        assert rect(outs, adj).shape == (60, 3)

    def test_first_layer_sees_concatenation(self):
        rect = CascadedRectifier((16, 8, 3), (16, 8, 3))
        assert rect.input_dims()[0] == 16 + 8 + 3

    def test_consumes_every_layer(self):
        rect = CascadedRectifier((16, 8, 3), (16, 8, 3))
        assert rect.consumed_layers() == (0, 1, 2)

    def test_wrong_embedding_count_rejected(self, setup):
        graph, adj, backbone, outs = setup
        rect = CascadedRectifier((16, 8, 3), (16, 8, 3))
        with pytest.raises(ValueError):
            rect(outs[:-1], adj)

    def test_theta_matches_paper_m1(self):
        """Table II cascaded M1: θ_rec ≈ 0.026-0.027 M (Cora)."""
        rect = M1.build_rectifier("cascaded", 7)
        assert rect.num_parameters() / 1e6 == pytest.approx(0.026, abs=0.0015)


class TestSeries:
    def test_default_tap_is_penultimate(self):
        rect = SeriesRectifier((16, 8, 3), (16, 8, 3))
        assert rect.consumed_layers() == (1,)
        assert rect.input_dims()[0] == 8

    def test_explicit_tap(self):
        rect = SeriesRectifier((16, 8, 3), (4, 3), tap=0)
        assert rect.consumed_layers() == (0,)
        assert rect.input_dims()[0] == 16

    def test_tap_out_of_range(self):
        with pytest.raises(ValueError):
            SeriesRectifier((16, 8), (4, 3), tap=5)

    def test_forward_uses_only_tap(self, setup):
        graph, adj, backbone, outs = setup
        rect = SeriesRectifier((16, 8, 3), (8, 3), seed=1)
        rect.eval()
        full = rect(outs, adj).data
        # Garbage in the non-consumed slots must not change the output.
        noisy = [nn.Tensor(np.random.default_rng(0).random(o.shape)) for o in outs]
        noisy[1] = outs[1]
        np.testing.assert_allclose(rect(noisy, adj).data, full)

    def test_theta_matches_paper_m1(self):
        """Table II series M1: θ_rec = 0.0085-0.0088 M."""
        rect = M1.build_rectifier("series", 7)
        assert rect.num_parameters() / 1e6 == pytest.approx(0.0088, abs=0.0005)

    def test_series_is_smallest(self):
        sizes = {
            scheme: M1.build_rectifier(scheme, 7).num_parameters()
            for scheme in ("parallel", "series", "cascaded")
        }
        assert sizes["series"] < sizes["parallel"] < sizes["cascaded"]


class TestCommonBehaviour:
    @pytest.mark.parametrize("scheme", ["parallel", "series", "cascaded"])
    def test_factory(self, scheme):
        rect = make_rectifier(scheme, (16, 8, 3), (16, 8, 3))
        assert rect.scheme == scheme

    def test_factory_unknown_scheme(self):
        with pytest.raises(ValueError):
            make_rectifier("zigzag", (8, 3), (8, 3))

    @pytest.mark.parametrize("scheme", ["parallel", "series", "cascaded"])
    def test_predict_label_only(self, setup, scheme):
        graph, adj, backbone, outs = setup
        rect = make_rectifier(scheme, (16, 8, 3), (16, 8, 3), seed=2)
        preds = rect.predict(outs, adj)
        assert preds.dtype.kind == "i"
        assert preds.shape == (60,)

    @pytest.mark.parametrize("scheme", ["parallel", "series", "cascaded"])
    def test_inputs_are_detached(self, setup, scheme):
        """One-way flow: rectifier gradients must not reach the backbone."""
        graph, adj, backbone, outs = setup
        backbone.zero_grad()
        rect = make_rectifier(scheme, (16, 8, 3), (16, 8, 3), seed=2)
        outs_live = backbone.forward_with_intermediates(
            nn.Tensor(graph.features), adj
        )
        rect(outs_live, adj).sum().backward()
        assert all(p.grad is None for p in backbone.parameters())
        assert any(p.grad is not None for p in rect.parameters())

    @pytest.mark.parametrize("scheme", ["parallel", "series", "cascaded"])
    def test_intermediates_depth(self, setup, scheme):
        graph, adj, backbone, outs = setup
        rect = make_rectifier(scheme, (16, 8, 3), (16, 8, 3), seed=2)
        layers = rect.forward_with_intermediates(outs, adj)
        assert len(layers) == 3
        assert layers[-1].shape == (60, 3)

    def test_accepts_plain_arrays(self, setup):
        graph, adj, backbone, outs = setup
        rect = make_rectifier("series", (16, 8, 3), (8, 3), seed=2)
        arrays = [o.data for o in outs]
        assert rect(rect._as_tensors(arrays), adj).shape == (60, 3)
