"""Shared fixtures: tiny graphs and a pre-trained mini GNNVault instance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import per_class_split
from repro.graph import make_sbm_graph
from repro.models import ModelPreset
from repro.training import TrainConfig
from repro.experiments import run_gnnvault

#: small preset for fast test-time training
TINY_PRESET = ModelPreset("T", backbone_hidden=(16, 8), rectifier_hidden=(16, 8))
FAST_TRAIN = TrainConfig(epochs=40, patience=15)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


@pytest.fixture
def tiny_graph():
    """60-node, 3-class homophilous SBM with class-correlated features."""
    return make_sbm_graph(
        num_nodes=60,
        num_classes=3,
        num_features=24,
        avg_degree=6.0,
        homophily=0.85,
        seed=11,
        name="tiny",
    )


@pytest.fixture
def tiny_split(tiny_graph):
    return per_class_split(tiny_graph.labels, train_per_class=8, seed=0)


@pytest.fixture(scope="session")
def session_graph():
    """Slightly larger shared graph for session-scoped trained artefacts."""
    return make_sbm_graph(
        num_nodes=120,
        num_classes=4,
        num_features=48,
        avg_degree=6.0,
        homophily=0.8,
        topic_concentration=0.45,
        active_per_node=10,
        seed=23,
        name="session",
    )


@pytest.fixture(scope="session")
def trained_vault(session_graph):
    """A fully trained mini GNNVault (all three rectifier schemes)."""
    return run_gnnvault(
        graph=session_graph,
        schemes=("parallel", "series", "cascaded"),
        substitute_kind="knn",
        knn_k=2,
        preset=TINY_PRESET,
        seed=3,
        train_config=FAST_TRAIN,
    )
