"""Autograd engine tests: every op's gradient against finite differences."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro import nn
from repro.nn.tensor import _unbroadcast


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``fn`` at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = fn(x)
        flat[i] = original - eps
        lower = fn(x)
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2 * eps)
    return grad


def check_unary(op, x_data, loss_weight=None):
    """Assert autograd gradient of sum(w * op(x)) matches finite differences."""
    weight = (
        loss_weight
        if loss_weight is not None
        else np.random.default_rng(0).random(op(nn.Tensor(x_data)).shape)
    )

    def scalar_fn(data):
        return float((op(nn.Tensor(data)).data * weight).sum())

    x = nn.Tensor(x_data.copy(), requires_grad=True)
    out = op(x)
    out.backward(weight)
    expected = numerical_gradient(scalar_fn, x_data.copy())
    np.testing.assert_allclose(x.grad, expected, rtol=1e-4, atol=1e-6)


class TestBasicOps:
    def test_add_forward(self):
        out = nn.Tensor([1.0, 2.0]) + nn.Tensor([3.0, 4.0])
        np.testing.assert_array_equal(out.data, [4.0, 6.0])

    def test_add_gradient(self):
        a = nn.Tensor([1.0, 2.0], requires_grad=True)
        b = nn.Tensor([3.0, 4.0], requires_grad=True)
        (a + b).backward([1.0, 1.0])
        np.testing.assert_array_equal(a.grad, [1.0, 1.0])
        np.testing.assert_array_equal(b.grad, [1.0, 1.0])

    def test_add_broadcast_gradient(self):
        a = nn.Tensor(np.ones((3, 4)), requires_grad=True)
        b = nn.Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_array_equal(b.grad, [3.0] * 4)

    def test_mul_gradient(self):
        rng = np.random.default_rng(1)
        x = rng.random((4, 3))
        y = rng.random((4, 3))
        a = nn.Tensor(x, requires_grad=True)
        b = nn.Tensor(y, requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, y)
        np.testing.assert_allclose(b.grad, x)

    def test_scalar_operators(self):
        a = nn.Tensor([2.0], requires_grad=True)
        out = (3.0 * a - 1.0) / 2.0 + 5.0
        assert out.data[0] == pytest.approx(7.5)
        out.backward([1.0])
        assert a.grad[0] == pytest.approx(1.5)

    def test_neg(self):
        a = nn.Tensor([1.0, -2.0], requires_grad=True)
        (-a).sum().backward()
        np.testing.assert_array_equal(a.grad, [-1.0, -1.0])

    def test_power_gradient(self):
        rng = np.random.default_rng(2)
        check_unary(lambda t: t**3.0, rng.random((3, 3)) + 0.5)

    def test_division_gradient(self):
        rng = np.random.default_rng(3)
        x = rng.random((3, 2)) + 1.0
        a = nn.Tensor(x, requires_grad=True)
        (1.0 / a).sum().backward()
        np.testing.assert_allclose(a.grad, -1.0 / x**2, rtol=1e-10)

    def test_rsub(self):
        a = nn.Tensor([1.0], requires_grad=True)
        (5.0 - a).backward([1.0])
        assert a.grad[0] == pytest.approx(-1.0)


class TestMatmul:
    def test_forward(self):
        a = nn.Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = nn.Tensor([[1.0], [1.0]])
        np.testing.assert_array_equal((a @ b).data, [[3.0], [7.0]])

    def test_gradients(self):
        rng = np.random.default_rng(4)
        x, w = rng.random((5, 3)), rng.random((3, 2))
        a = nn.Tensor(x, requires_grad=True)
        b = nn.Tensor(w, requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((5, 2)) @ w.T)
        np.testing.assert_allclose(b.grad, x.T @ np.ones((5, 2)))

    def test_chain_through_two_matmuls(self):
        rng = np.random.default_rng(5)
        x = rng.random((4, 3))
        w1 = nn.Tensor(rng.random((3, 3)), requires_grad=True)
        w2 = nn.Tensor(rng.random((3, 2)), requires_grad=True)
        out = (nn.Tensor(x) @ w1) @ w2
        out.sum().backward()
        assert w1.grad.shape == (3, 3)
        assert w2.grad.shape == (3, 2)

    def test_sparse_matmul_forward(self):
        adj = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        x = nn.Tensor([[1.0, 2.0], [3.0, 4.0]])
        out = nn.sparse_matmul(adj, x)
        np.testing.assert_array_equal(out.data, [[3.0, 4.0], [1.0, 2.0]])

    def test_sparse_matmul_gradient(self):
        rng = np.random.default_rng(6)
        dense = rng.random((6, 6)) * (rng.random((6, 6)) > 0.5)
        adj = sp.csr_matrix(dense)
        x_data = rng.random((6, 3))
        x = nn.Tensor(x_data, requires_grad=True)
        weight = rng.random((6, 3))
        nn.sparse_matmul(adj, x).backward(weight)
        np.testing.assert_allclose(x.grad, dense.T @ weight, rtol=1e-10)


class TestActivations:
    def test_relu_forward(self):
        out = nn.relu(nn.Tensor([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(out.data, [0.0, 0.0, 2.0])

    @pytest.mark.parametrize(
        "op",
        [nn.relu, nn.exp, nn.tanh, nn.sigmoid, lambda t: nn.leaky_relu(t, 0.2)],
        ids=["relu", "exp", "tanh", "sigmoid", "leaky_relu"],
    )
    def test_unary_gradients(self, op):
        rng = np.random.default_rng(7)
        # avoid the ReLU kink at exactly 0
        x = rng.random((4, 3)) + 0.1
        check_unary(op, x)

    def test_log_gradient(self):
        rng = np.random.default_rng(8)
        check_unary(nn.log, rng.random((3, 3)) + 0.5)

    def test_leaky_relu_negative_slope(self):
        out = nn.leaky_relu(nn.Tensor([-10.0]), 0.2)
        assert out.data[0] == pytest.approx(-2.0)


class TestSoftmax:
    def test_log_softmax_rows_normalise(self):
        rng = np.random.default_rng(9)
        out = nn.log_softmax(nn.Tensor(rng.random((5, 4))), axis=1)
        np.testing.assert_allclose(np.exp(out.data).sum(axis=1), np.ones(5))

    def test_log_softmax_stability(self):
        out = nn.log_softmax(nn.Tensor([[1e6, 1e6 + 1.0]]), axis=1)
        assert np.all(np.isfinite(out.data))

    def test_log_softmax_gradient(self):
        rng = np.random.default_rng(10)
        check_unary(lambda t: nn.log_softmax(t, axis=1), rng.random((4, 5)))

    def test_softmax_gradient(self):
        rng = np.random.default_rng(11)
        check_unary(lambda t: nn.softmax(t, axis=1), rng.random((3, 4)))


class TestReductionsAndShapes:
    def test_sum_all(self):
        x = nn.Tensor(np.ones((3, 4)), requires_grad=True)
        total = x.sum()
        assert total.item() == pytest.approx(12.0)
        total.backward()
        np.testing.assert_array_equal(x.grad, np.ones((3, 4)))

    def test_sum_axis(self):
        x = nn.Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        x.sum(axis=0).backward([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(x.grad, [[1.0, 2.0, 3.0]] * 2)

    def test_sum_axis_keepdims(self):
        x = nn.Tensor(np.ones((2, 3)), requires_grad=True)
        out = x.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.backward(np.ones((2, 1)))
        np.testing.assert_array_equal(x.grad, np.ones((2, 3)))

    def test_mean_gradient(self):
        x = nn.Tensor(np.ones((4,)), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, [0.25] * 4)

    def test_reshape_roundtrip_gradient(self):
        x = nn.Tensor(np.arange(6.0), requires_grad=True)
        x.reshape(2, 3).sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones(6))

    def test_transpose_gradient(self):
        x = nn.Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        weight = np.arange(6.0).reshape(3, 2)
        x.T.backward(weight)
        np.testing.assert_array_equal(x.grad, weight.T)

    def test_concatenate_forward_and_gradient(self):
        a = nn.Tensor(np.ones((2, 2)), requires_grad=True)
        b = nn.Tensor(2 * np.ones((2, 3)), requires_grad=True)
        out = nn.concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        grad = np.arange(10.0).reshape(2, 5)
        out.backward(grad)
        np.testing.assert_array_equal(a.grad, grad[:, :2])
        np.testing.assert_array_equal(b.grad, grad[:, 2:])

    def test_concatenate_empty_raises(self):
        with pytest.raises(ValueError):
            nn.concatenate([])

    def test_take_rows_gradient_scatter_adds(self):
        x = nn.Tensor(np.zeros((4, 2)), requires_grad=True)
        nn.take_rows(x, np.array([0, 0, 3])).sum().backward()
        np.testing.assert_array_equal(x.grad, [[2, 2], [0, 0], [0, 0], [1, 1]])


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = nn.Tensor(np.ones((10, 10)))
        out = nn.dropout(x, 0.5, training=False)
        assert out is x

    def test_zero_probability_is_identity(self):
        x = nn.Tensor(np.ones((5, 5)))
        assert nn.dropout(x, 0.0, training=True) is x

    def test_train_mode_scales_survivors(self):
        rng = np.random.default_rng(12)
        x = nn.Tensor(np.ones((2000,)))
        out = nn.dropout(x, 0.5, training=True, rng=rng)
        survivors = out.data[out.data > 0]
        np.testing.assert_allclose(survivors, 2.0)
        # inverted dropout keeps the expectation
        assert out.data.mean() == pytest.approx(1.0, abs=0.1)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            nn.dropout(nn.Tensor([1.0]), 1.0, training=True)

    def test_gradient_masks_match_forward(self):
        rng = np.random.default_rng(13)
        x = nn.Tensor(np.ones((100,)), requires_grad=True)
        out = nn.dropout(x, 0.3, training=True, rng=rng)
        out.sum().backward()
        np.testing.assert_allclose((out.data > 0).astype(float) / 0.7, x.grad)


class TestBackwardMechanics:
    def test_backward_requires_scalar_without_grad(self):
        with pytest.raises(ValueError):
            nn.Tensor([1.0, 2.0], requires_grad=True).backward()

    def test_backward_shape_mismatch(self):
        x = nn.Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            x.backward(np.ones(3))

    def test_gradient_accumulates_across_uses(self):
        x = nn.Tensor([1.0], requires_grad=True)
        (x + x).backward([1.0])
        np.testing.assert_array_equal(x.grad, [2.0])

    def test_diamond_graph(self):
        x = nn.Tensor([2.0], requires_grad=True)
        a = x * 3.0
        b = x * 4.0
        (a + b).backward([1.0])
        assert x.grad[0] == pytest.approx(7.0)

    def test_zero_grad(self):
        x = nn.Tensor([1.0], requires_grad=True)
        (x * 2.0).backward([1.0])
        x.zero_grad()
        assert x.grad is None

    def test_detach_cuts_graph(self):
        x = nn.Tensor([1.0], requires_grad=True)
        y = (x * 2.0).detach()
        z = nn.Tensor([1.0], requires_grad=True)
        (y * z).backward([1.0])
        assert x.grad is None
        assert z.grad[0] == pytest.approx(2.0)

    def test_no_graph_without_requires_grad(self):
        out = nn.Tensor([1.0]) * nn.Tensor([2.0])
        assert out._backward_fn is None

    def test_deep_chain_no_recursion_error(self):
        x = nn.Tensor([1.0], requires_grad=True)
        out = x
        for _ in range(3000):
            out = out + 0.0
        out.backward([1.0])
        assert x.grad[0] == pytest.approx(1.0)

    def test_repr(self):
        t = nn.Tensor(np.ones((2, 3)), requires_grad=True, name="w")
        assert "2, 3" in repr(t) and "w" in repr(t)

    def test_item_and_len(self):
        assert nn.Tensor([[5.0]]).item() == 5.0
        assert len(nn.Tensor(np.zeros((7, 2)))) == 7


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((3, 4))
        assert _unbroadcast(g, (3, 4)) is g

    def test_leading_axis(self):
        g = np.ones((5, 3))
        np.testing.assert_array_equal(_unbroadcast(g, (3,)), [5.0] * 3)

    def test_size_one_axis(self):
        g = np.ones((3, 4))
        out = _unbroadcast(g, (3, 1))
        np.testing.assert_array_equal(out, [[4.0]] * 3)

    def test_scalar_target(self):
        g = np.ones((2, 2))
        assert _unbroadcast(g, ()) == pytest.approx(4.0)
