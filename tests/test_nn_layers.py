"""Linear / GCNConv / Dropout layer behaviour."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro import nn
from repro.graph import gcn_normalize, make_sbm_graph


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestLinear:
    def test_shapes(self, rng):
        layer = nn.Linear(5, 3, rng=rng)
        out = layer(nn.Tensor(np.ones((7, 5))))
        assert out.shape == (7, 3)

    def test_matches_manual_affine(self, rng):
        layer = nn.Linear(4, 2, rng=rng)
        x = rng.random((3, 4))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(nn.Tensor(x)).data, expected)

    def test_no_bias(self, rng):
        layer = nn.Linear(4, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_glorot_scale(self, rng):
        layer = nn.Linear(100, 100, rng=rng)
        limit = np.sqrt(6.0 / 200)
        assert np.abs(layer.weight.data).max() <= limit

    def test_repr(self, rng):
        assert "4 -> 2" in repr(nn.Linear(4, 2, rng=rng))


class TestGCNConv:
    def test_shapes(self, rng):
        graph = make_sbm_graph(20, 2, 8, 4.0, seed=1)
        adj = gcn_normalize(graph.adjacency)
        conv = nn.GCNConv(8, 5, rng=rng)
        out = conv(nn.Tensor(graph.features), adj)
        assert out.shape == (20, 5)

    def test_equals_dense_formula(self, rng):
        graph = make_sbm_graph(15, 2, 6, 4.0, seed=2)
        adj = gcn_normalize(graph.adjacency)
        conv = nn.GCNConv(6, 4, rng=rng)
        expected = adj.toarray() @ (graph.features @ conv.weight.data) + conv.bias.data
        np.testing.assert_allclose(
            conv(nn.Tensor(graph.features), adj).data, expected, rtol=1e-10
        )

    def test_isolated_node_gets_self_only(self, rng):
        # 3 nodes, node 2 isolated: with self loops its output is its own
        # projected feature scaled by 1 (degree 1).
        adj = sp.csr_matrix(np.array([[0, 1, 0], [1, 0, 0], [0, 0, 0]], dtype=float))
        norm = gcn_normalize(adj)
        conv = nn.GCNConv(2, 2, bias=False, rng=rng)
        x = np.array([[1.0, 0.0], [0.0, 1.0], [2.0, 2.0]])
        out = conv(nn.Tensor(x), norm)
        np.testing.assert_allclose(out.data[2], x[2] @ conv.weight.data, rtol=1e-10)

    def test_node_count_mismatch_raises(self, rng):
        adj = gcn_normalize(sp.identity(4, format="csr"))
        conv = nn.GCNConv(3, 2, rng=rng)
        with pytest.raises(ValueError):
            conv(nn.Tensor(np.ones((5, 3))), adj)

    def test_gradients_flow_to_weight(self, rng):
        graph = make_sbm_graph(12, 2, 5, 3.0, seed=3)
        adj = gcn_normalize(graph.adjacency)
        conv = nn.GCNConv(5, 3, rng=rng)
        conv(nn.Tensor(graph.features), adj).sum().backward()
        assert conv.weight.grad is not None
        assert conv.bias.grad is not None

    def test_repr(self, rng):
        assert "5 -> 3" in repr(nn.GCNConv(5, 3, rng=rng))


class TestDropoutModule:
    def test_respects_training_flag(self, rng):
        layer = nn.Dropout(0.9, rng=rng)
        layer.training = False
        x = nn.Tensor(np.ones(100))
        assert layer(x) is x

    def test_drops_in_training(self, rng):
        layer = nn.Dropout(0.5, rng=rng)
        out = layer(nn.Tensor(np.ones(1000)))
        assert (out.data == 0).sum() > 300

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(-0.1)

    def test_repr(self):
        assert "0.5" in repr(nn.Dropout(0.5))
