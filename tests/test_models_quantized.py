"""Quantization tests: grids, errors, memory accounting, functionality."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import gcn_normalize
from repro.models import (
    GCNBackbone,
    make_rectifier,
    quantization_sweep,
    quantize_array,
    quantize_rectifier,
)


class TestQuantizeArray:
    def test_roundtrip_error_bounded_by_half_step(self):
        rng = np.random.default_rng(0)
        weights = rng.normal(0, 1, (20, 10))
        snapped, scale = quantize_array(weights, bits=8)
        assert np.abs(snapped - weights).max() <= scale / 2 + 1e-12

    def test_grid_size(self):
        rng = np.random.default_rng(1)
        weights = rng.normal(0, 1, (50, 50))
        snapped, _ = quantize_array(weights, bits=4)
        # 4 bits → at most 2*(2^3-1)+1 = 15 distinct levels
        assert np.unique(snapped).size <= 15

    def test_more_bits_less_error(self):
        rng = np.random.default_rng(2)
        weights = rng.normal(0, 1, (30, 30))
        err8 = np.abs(quantize_array(weights, 8)[0] - weights).max()
        err2 = np.abs(quantize_array(weights, 2)[0] - weights).max()
        assert err8 < err2

    def test_zero_weights_passthrough(self):
        snapped, scale = quantize_array(np.zeros((3, 3)), 8)
        np.testing.assert_array_equal(snapped, 0.0)
        assert scale == 1.0

    def test_sign_symmetry(self):
        weights = np.array([[-1.0, 1.0]])
        snapped, _ = quantize_array(weights, 8)
        assert snapped[0, 0] == -snapped[0, 1]

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quantize_array(np.ones(3), 1)
        with pytest.raises(ValueError):
            quantize_array(np.ones(3), 20)


class TestQuantizeRectifier:
    @pytest.fixture
    def rectifier(self):
        return make_rectifier("parallel", (16, 8, 3), (16, 8, 3), seed=0)

    def test_original_untouched(self, rectifier):
        before = rectifier.state_dict()
        quantize_rectifier(rectifier, bits=4)
        after = rectifier.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_memory_accounting(self, rectifier):
        _, report = quantize_rectifier(rectifier, bits=8)
        assert report.memory_bytes == rectifier.num_parameters()
        assert report.compression == pytest.approx(8.0)

    def test_sub_byte_widths_round_up(self, rectifier):
        _, report = quantize_rectifier(rectifier, bits=4)
        assert report.memory_bytes == rectifier.num_parameters()  # 1 B each

    def test_report_error_positive(self, rectifier):
        _, report = quantize_rectifier(rectifier, bits=4)
        assert report.max_round_error > 0

    def test_quantized_model_still_functional(self, tiny_graph, rectifier):
        adj = gcn_normalize(tiny_graph.adjacency)
        backbone = GCNBackbone(tiny_graph.num_features, (16, 8, 3), seed=0)
        outs = backbone.embeddings(tiny_graph.features, adj)
        quantized, _ = quantize_rectifier(rectifier, bits=8)
        preds = quantized.predict(outs, adj)
        assert preds.shape == (60,)

    def test_8bit_predictions_mostly_agree(self, tiny_graph, rectifier):
        adj = gcn_normalize(tiny_graph.adjacency)
        backbone = GCNBackbone(tiny_graph.num_features, (16, 8, 3), seed=0)
        outs = backbone.embeddings(tiny_graph.features, adj)
        rectifier.eval()
        original = rectifier.predict(outs, adj)
        quantized, _ = quantize_rectifier(rectifier, bits=8)
        assert (quantized.predict(outs, adj) == original).mean() > 0.9

    def test_sweep_covers_widths(self, rectifier):
        sweep = quantization_sweep(rectifier, bit_widths=(8, 4))
        assert set(sweep) == {8, 4}
        assert sweep[4][1].max_round_error >= sweep[8][1].max_round_error
