"""Tests for the vaultlint static trust-boundary analyzer.

Fixture trees mimic the ``repro`` package layout (``deploy/``, ``tee/``,
``obs/``) under a tmp root so every rule can be driven against a known
bad snippet and its known-good laundered twin. The last section runs the
analyzer over the real shipped tree with the committed baseline — the
self-check that CI relies on.
"""

import json
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro import cli
from repro.analysis_static import (
    Baseline,
    RULEBOOK_VERSION,
    RULES,
    HINTS,
    run_vaultlint,
    scan_pragmas,
    sort_findings,
)
from repro.analysis_static.engine import changed_files, default_root, lint_file
from repro.obs import vocabulary

REPO_ROOT = Path(__file__).resolve().parents[1]


def write(root: Path, rel: str, source: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def rules_fired(report):
    return sorted({f.rule for f in report.findings})


# ----------------------------------------------------------------------
# Pass 1: import boundary
# ----------------------------------------------------------------------

class TestBoundaryPass:
    def test_private_import_from_untrusted_layer_fires(self, tmp_path):
        write(tmp_path, "deploy/leaky.py", """\
            from repro.tee.enclave import RectifierEnclave

            enclave = RectifierEnclave()
        """)
        report = run_vaultlint(root=tmp_path)
        assert "VL-B001" in rules_fired(report)
        assert report.exit_code == 1

    def test_relative_private_import_fires(self, tmp_path):
        write(tmp_path, "deploy/leaky.py", """\
            from ..tee.sealed import unseal
        """)
        report = run_vaultlint(root=tmp_path)
        assert "VL-B001" in rules_fired(report)

    def test_trusted_layer_may_import_private_names(self, tmp_path):
        write(tmp_path, "tee/internal.py", """\
            from repro.tee.sealed import unseal
        """)
        report = run_vaultlint(root=tmp_path)
        assert report.findings == []

    def test_facade_allowlist_admits_full_surface(self, tmp_path):
        write(tmp_path, "deploy/inference.py", """\
            from repro.tee.enclave import RectifierEnclave, seal_private_graph
            from repro.tee.sealed import unseal
        """)
        report = run_vaultlint(root=tmp_path)
        assert report.findings == []

    def test_partial_allowlist_admits_only_listed_names(self, tmp_path):
        write(tmp_path, "deploy/updates.py", """\
            from repro.tee.sealed import seal
            from repro.tee.sealed import unseal
        """)
        report = run_vaultlint(root=tmp_path)
        assert rules_fired(report) == ["VL-B001"]
        assert len(report.findings) == 1
        assert "unseal" in report.findings[0].message

    def test_private_attribute_reach_through_fires(self, tmp_path):
        write(tmp_path, "obs/probe.py", """\
            def peek(enclave):
                return enclave._adjacency
        """)
        report = run_vaultlint(root=tmp_path)
        assert "VL-B002" in rules_fired(report)

    def test_self_private_attribute_is_fine(self, tmp_path):
        write(tmp_path, "deploy/mine.py", """\
            class Cache:
                def __init__(self):
                    self._plan_cache = {}

                def get(self):
                    return self._plan_cache
        """)
        report = run_vaultlint(root=tmp_path)
        assert report.findings == []

    def test_findings_carry_hints_and_invariants(self, tmp_path):
        write(tmp_path, "deploy/leaky.py", """\
            from repro.tee.enclave import RectifierEnclave
        """)
        report = run_vaultlint(root=tmp_path)
        doc = report.findings[0].to_dict()
        assert doc["invariant"] == RULES["VL-B001"]
        assert doc["hint"] == HINTS["VL-B001"]
        assert doc["fingerprint"]


# ----------------------------------------------------------------------
# Pass 2: egress taint
# ----------------------------------------------------------------------

class TestTaintPass:
    def test_payload_in_exception_message_fires(self, tmp_path):
        write(tmp_path, "tee/enclave_fixture.py", """\
            def check(payload):
                if not payload:
                    raise ValueError(f"bad payload: {payload}")
        """)
        report = run_vaultlint(root=tmp_path)
        assert "VL-T001" in rules_fired(report)
        # taint findings carry a source -> sink trace
        assert report.findings[0].trace

    def test_laundered_exception_message_is_clean(self, tmp_path):
        write(tmp_path, "tee/enclave_fixture.py", """\
            def check(embeddings):
                if embeddings.shape[0] != 7:
                    raise ValueError(
                        f"embeddings cover {embeddings.shape[0]} nodes"
                    )
                raise ValueError(f"{len(embeddings)} blocks")
        """)
        report = run_vaultlint(root=tmp_path)
        assert report.findings == []

    def test_raw_logits_through_channel_fires(self, tmp_path):
        write(tmp_path, "tee/egress.py", """\
            def drain(channel, logits):
                channel.push(logits)
        """)
        report = run_vaultlint(root=tmp_path)
        assert "VL-T003" in rules_fired(report)

    def test_argmax_declassifies_logits(self, tmp_path):
        write(tmp_path, "tee/egress.py", """\
            def drain(channel, logits):
                channel.push(logits.argmax(axis=1))
        """)
        report = run_vaultlint(root=tmp_path)
        assert report.findings == []

    def test_private_state_into_telemetry_fires(self, tmp_path):
        write(tmp_path, "tee/metrics_leak.py", """\
            class Enclave:
                def leak(self, span):
                    span.set_attribute("adj", self._adjacency)
        """)
        report = run_vaultlint(root=tmp_path)
        assert "VL-T002" in rules_fired(report)

    def test_unseal_result_is_tainted(self, tmp_path):
        write(tmp_path, "tee/keys.py", """\
            def reveal(blob, key, log):
                plain = unseal(blob, key)
                log.emit("ecall", secret=plain)
        """)
        report = run_vaultlint(root=tmp_path)
        assert "VL-T002" in rules_fired(report)

    def test_taint_scope_excludes_untrusted_layers(self, tmp_path):
        # identical code outside tee/ is not subject to the taint pass
        write(tmp_path, "deploy/helper.py", """\
            def check(payload):
                raise ValueError(f"bad payload: {payload}")
        """)
        report = run_vaultlint(root=tmp_path)
        assert "VL-T001" not in rules_fired(report)


# ----------------------------------------------------------------------
# Pass 3: telemetry gate schemas
# ----------------------------------------------------------------------

class TestGatePass:
    def test_forbidden_word_in_metric_name_fires(self, tmp_path):
        write(tmp_path, "obs/emit.py", """\
            def record(metrics):
                metrics.inc("enclave_evicted_nodes_total")
        """)
        report = run_vaultlint(root=tmp_path)
        assert "VL-G001" in rules_fired(report)

    def test_missing_aggregate_suffix_fires(self, tmp_path):
        write(tmp_path, "obs/emit.py", """\
            def record(metrics):
                metrics.inc("enclave_cache_warm")
        """)
        report = run_vaultlint(root=tmp_path)
        assert "VL-G001" in rules_fired(report)

    def test_clean_metric_is_clean(self, tmp_path):
        write(tmp_path, "obs/emit.py", """\
            def record(metrics):
                metrics.inc("enclave_queries_total", tenant="abc")
                metrics.observe_seconds("enclave_ecall_seconds", 0.1)
        """)
        report = run_vaultlint(root=tmp_path)
        assert report.findings == []

    def test_unknown_label_key_fires(self, tmp_path):
        write(tmp_path, "obs/emit.py", """\
            def record(metrics):
                metrics.inc("enclave_queries_total", node_kind="leaf")
        """)
        report = run_vaultlint(root=tmp_path)
        assert "VL-G002" in rules_fired(report)

    def test_non_enum_label_value_fires(self, tmp_path):
        write(tmp_path, "obs/emit.py", """\
            def record(metrics):
                metrics.inc("enclave_queries_total", stage="Phase1")
        """)
        report = run_vaultlint(root=tmp_path)
        assert "VL-G003" in rules_fired(report)

    def test_unknown_log_event_fires(self, tmp_path):
        write(tmp_path, "obs/emit.py", """\
            def record(log):
                log.emit("telepathy", corr="c")
        """)
        report = run_vaultlint(root=tmp_path)
        assert "VL-G004" in rules_fired(report)

    def test_extra_log_field_fires(self, tmp_path):
        write(tmp_path, "obs/emit.py", """\
            def record(log, corr, tenant, err):
                log.emit("drop", corr=corr, tenant=tenant, error=err,
                         verbatim_query=1)
        """)
        report = run_vaultlint(root=tmp_path)
        assert "VL-G005" in rules_fired(report)

    def test_known_log_event_is_clean(self, tmp_path):
        write(tmp_path, "obs/emit.py", """\
            def record(log, corr, tenant):
                log.emit("admit", corr=corr, tenant=tenant, size_count=3)
        """)
        report = run_vaultlint(root=tmp_path)
        assert report.findings == []

    def test_unknown_audit_kind_fires(self, tmp_path):
        write(tmp_path, "obs/emit.py", """\
            def record(gate):
                gate.audit("exfiltration", result="ok")
        """)
        report = run_vaultlint(root=tmp_path)
        assert "VL-G006" in rules_fired(report)


# ----------------------------------------------------------------------
# Pass 4: lock discipline
# ----------------------------------------------------------------------

LOCK_FIXTURE = """\
    import threading


    class Stats:
        def __init__(self):
            self._lock = threading.Lock()
            self._count = 0

        def bump(self):
            with self._lock:
                self._count += 1

        def racy_write(self):
            self._count = 0

        def racy_read(self):
            return self._count
"""


class TestLockPass:
    def test_unlocked_write_and_read_fire(self, tmp_path):
        write(tmp_path, "deploy/scheduler.py", LOCK_FIXTURE)
        report = run_vaultlint(root=tmp_path)
        assert rules_fired(report) == ["VL-L001", "VL-L002"]
        messages = " ".join(f.message for f in report.findings)
        assert "racy_write" in messages and "racy_read" in messages

    def test_lock_pass_scoped_to_concurrent_modules(self, tmp_path):
        # the same class elsewhere is single-threaded by construction
        write(tmp_path, "deploy/other.py", LOCK_FIXTURE)
        report = run_vaultlint(root=tmp_path)
        assert report.findings == []

    def test_never_locked_attribute_is_not_guarded(self, tmp_path):
        write(tmp_path, "deploy/scheduler.py", """\
            import threading


            class Config:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._name = "x"

                def read(self):
                    return self._name
        """)
        report = run_vaultlint(root=tmp_path)
        assert report.findings == []

    def test_pragma_suppresses_lock_finding(self, tmp_path):
        write(tmp_path, "deploy/scheduler.py", """\
            import threading


            class Stats:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1

                def peek(self):
                    # vaultlint: unlocked-ok(single int read, GIL-atomic)
                    return self._count
        """)
        report = run_vaultlint(root=tmp_path)
        assert report.findings == []

    def test_pragma_does_not_suppress_other_rule_families(self, tmp_path):
        write(tmp_path, "deploy/leaky.py", """\
            # vaultlint: unlocked-ok(wrong family for an import finding)
            from repro.tee.enclave import RectifierEnclave
        """)
        report = run_vaultlint(root=tmp_path)
        assert "VL-B001" in rules_fired(report)


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------

class TestPragmas:
    def test_missing_justification_is_a_finding(self, tmp_path):
        write(tmp_path, "deploy/scheduler.py", """\
            x = 1  # vaultlint: unlocked-ok
        """)
        report = run_vaultlint(root=tmp_path)
        assert "VL-P001" in rules_fired(report)

    def test_unknown_token_is_a_finding(self, tmp_path):
        write(tmp_path, "deploy/scheduler.py", """\
            x = 1  # vaultlint: trust-me(because)
        """)
        report = run_vaultlint(root=tmp_path)
        assert "VL-P001" in rules_fired(report)

    def test_pragma_text_in_string_literal_is_ignored(self, tmp_path):
        write(tmp_path, "deploy/doc.py", '''\
            HELP = """annotate `# vaultlint: unlocked-ok` to suppress"""
        ''')
        report = run_vaultlint(root=tmp_path)
        assert report.findings == []

    def test_own_line_pragma_covers_next_line(self):
        source = (
            "# vaultlint: egress-ok(fixture)\n"
            "x = 1\n"
        )
        pragmas, errors = scan_pragmas(source)
        assert errors == []
        (pragma,) = pragmas
        assert pragma.suppresses("VL-T001", 1)
        assert pragma.suppresses("VL-T001", 2)
        assert not pragma.suppresses("VL-T001", 3)
        assert not pragma.suppresses("VL-L001", 2)


# ----------------------------------------------------------------------
# Baseline ratchet, ordering, engine plumbing
# ----------------------------------------------------------------------

class TestEngine:
    def _violating_tree(self, tmp_path):
        write(tmp_path, "deploy/leaky.py", """\
            from repro.tee.enclave import RectifierEnclave
        """)
        write(tmp_path, "tee/egress.py", """\
            def drain(channel, logits):
                channel.push(logits)
        """)

    def test_baseline_lets_accepted_findings_ride(self, tmp_path):
        self._violating_tree(tmp_path)
        first = run_vaultlint(root=tmp_path)
        assert first.exit_code == 1

        baseline = Baseline.from_findings(first.findings)
        second = run_vaultlint(root=tmp_path, baseline=baseline)
        assert second.findings == []
        assert len(second.baselined) == len(first.findings)
        assert second.exit_code == 0

    def test_new_finding_fails_despite_baseline(self, tmp_path):
        self._violating_tree(tmp_path)
        first = run_vaultlint(root=tmp_path)
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(Baseline().to_json(first.findings))

        write(tmp_path, "obs/new_leak.py", """\
            def peek(enclave):
                return enclave._seal_key
        """)
        second = run_vaultlint(root=tmp_path, baseline=baseline_path)
        assert second.exit_code == 1
        assert rules_fired(second) == ["VL-B002"]

    def test_baseline_survives_line_drift(self, tmp_path):
        self._violating_tree(tmp_path)
        baseline = Baseline.from_findings(
            run_vaultlint(root=tmp_path).findings
        )
        # prepend a comment block: every finding moves down two lines
        leaky = tmp_path / "deploy" / "leaky.py"
        leaky.write_text("# moved\n# down\n" + leaky.read_text())
        report = run_vaultlint(root=tmp_path, baseline=baseline)
        assert report.findings == []

    def test_stale_baseline_version_is_an_error(self, tmp_path):
        self._violating_tree(tmp_path)
        stale = tmp_path / "baseline.json"
        stale.write_text(json.dumps(
            {"rulebook_version": RULEBOOK_VERSION + 1, "findings": []}
        ))
        report = run_vaultlint(root=tmp_path, baseline=stale)
        assert report.exit_code == 2
        assert report.parse_errors

    def test_missing_baseline_file_means_no_baseline(self, tmp_path):
        self._violating_tree(tmp_path)
        report = run_vaultlint(
            root=tmp_path, baseline=tmp_path / "absent.json"
        )
        assert report.exit_code == 1

    def test_findings_are_deterministically_ordered(self, tmp_path):
        self._violating_tree(tmp_path)
        write(tmp_path, "obs/new_leak.py", """\
            def peek(enclave):
                return enclave._seal_key
        """)
        report = run_vaultlint(root=tmp_path)
        keys = [f.sort_key for f in report.findings]
        assert keys == sorted(keys)
        assert report.findings == sort_findings(report.findings)

    def test_syntax_error_is_exit_2(self, tmp_path):
        write(tmp_path, "deploy/broken.py", "def oops(:\n")
        report = run_vaultlint(root=tmp_path)
        assert report.exit_code == 2
        assert report.parse_errors

    def test_lint_file_reports_relative_posix_paths(self, tmp_path):
        path = write(tmp_path, "deploy/leaky.py", """\
            from repro.tee.enclave import RectifierEnclave
        """)
        findings, err = lint_file(path, tmp_path)
        assert err is None
        assert findings[0].path == "deploy/leaky.py"

    def test_changed_only_narrows_to_dirty_files(self, tmp_path):
        self._violating_tree(tmp_path)
        git = ["git", "-C", str(tmp_path),
               "-c", "user.email=t@example.com", "-c", "user.name=t"]
        try:
            subprocess.run(git[:3] + ["init", "-q"], check=True,
                           capture_output=True)
            subprocess.run(git + ["add", "-A"], check=True,
                           capture_output=True)
            subprocess.run(git + ["commit", "-qm", "seed"], check=True,
                           capture_output=True)
        except (OSError, subprocess.CalledProcessError):
            pytest.skip("git unavailable")
        # only the tee file is dirty afterwards
        egress = tmp_path / "tee" / "egress.py"
        egress.write_text(egress.read_text() + "# dirty\n")
        narrowed = changed_files(tmp_path)
        assert narrowed is not None
        assert [p.name for p in narrowed] == ["egress.py"]
        report = run_vaultlint(root=tmp_path, changed_only=True)
        assert report.files_linted == 1
        assert rules_fired(report) == ["VL-T003"]

    def test_changed_only_outside_git_falls_back_to_full_tree(
        self, tmp_path, monkeypatch
    ):
        self._violating_tree(tmp_path)
        monkeypatch.setattr(
            "repro.analysis_static.engine.changed_files",
            lambda root: None,
        )
        report = run_vaultlint(root=tmp_path, changed_only=True)
        assert report.files_linted == 2


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------

class TestCli:
    def test_exit_codes_and_text_output(self, tmp_path, capsys):
        write(tmp_path, "deploy/leaky.py", """\
            from repro.tee.enclave import RectifierEnclave
        """)
        rc = cli.main([
            "vaultlint", "--root", str(tmp_path),
            "--baseline", str(tmp_path / "absent.json"),
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "VL-B001" in out
        assert "hint:" in out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write(tmp_path, "deploy/fine.py", "x = 1\n")
        rc = cli.main([
            "vaultlint", "--root", str(tmp_path),
            "--baseline", str(tmp_path / "absent.json"),
        ])
        assert rc == 0
        assert "0 finding(s) in 1 file(s)" in capsys.readouterr().out

    def test_json_report_is_stable(self, tmp_path, capsys):
        write(tmp_path, "deploy/leaky.py", """\
            from repro.tee.enclave import RectifierEnclave
        """)
        out_path = tmp_path / "report.json"
        args = [
            "vaultlint", "--root", str(tmp_path), "--format", "json",
            "--output", str(out_path),
            "--baseline", str(tmp_path / "absent.json"),
        ]
        rc = cli.main(args)
        capsys.readouterr()
        first = out_path.read_text()
        assert rc == 1
        doc = json.loads(first)
        assert doc["tool"] == "vaultlint"
        assert doc["rulebook_version"] == RULEBOOK_VERSION
        assert doc["summary"] == {"VL-B001": 1}
        assert doc["findings"][0]["invariant"] == RULES["VL-B001"]
        # byte-identical across runs
        cli.main(args)
        capsys.readouterr()
        assert out_path.read_text() == first

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        write(tmp_path, "deploy/leaky.py", """\
            from repro.tee.enclave import RectifierEnclave
        """)
        baseline = tmp_path / "baseline.json"
        rc = cli.main([
            "vaultlint", "--root", str(tmp_path),
            "--baseline", str(baseline), "--write-baseline",
        ])
        assert rc == 0
        assert baseline.is_file()
        rc = cli.main([
            "vaultlint", "--root", str(tmp_path),
            "--baseline", str(baseline),
        ])
        capsys.readouterr()
        assert rc == 0

    def test_parse_error_exits_two(self, tmp_path, capsys):
        write(tmp_path, "deploy/broken.py", "def oops(:\n")
        rc = cli.main([
            "vaultlint", "--root", str(tmp_path),
            "--baseline", str(tmp_path / "absent.json"),
        ])
        capsys.readouterr()
        assert rc == 2


# ----------------------------------------------------------------------
# Live-tree self-check: the shipped code must satisfy its own analyzer
# ----------------------------------------------------------------------

class TestLiveTree:
    def test_shipped_tree_is_clean_against_shipped_baseline(self):
        report = run_vaultlint(
            baseline=REPO_ROOT / "vaultlint_baseline.json"
        )
        assert report.parse_errors == []
        assert report.findings == [], "\n".join(
            f.format_text() for f in report.findings
        )
        assert report.files_linted > 50

    def test_shipped_baseline_carries_no_debt(self):
        # the tree was repaired rather than baselined; keep it that way
        baseline = Baseline.load(REPO_ROOT / "vaultlint_baseline.json")
        assert baseline.entries == set()
        assert baseline.version == RULEBOOK_VERSION

    def test_default_root_is_the_repro_package(self):
        root = default_root()
        assert root.name == "repro"
        assert (root / "tee" / "enclave.py").is_file()

    def test_rulebook_vocabulary_matches_runtime_gate(self):
        # the lint pass and the runtime gate must read the same tables
        from repro.analysis_static import DEFAULT_RULEBOOK as rb

        assert rb.gate_label_keys == vocabulary.GATE_LABEL_KEYS
        assert rb.metric_suffixes == vocabulary.METRIC_SUFFIXES
        assert rb.log_schema == vocabulary.LOG_SCHEMA
        assert rb.enclave_audit_kinds == vocabulary.ENCLAVE_AUDIT_KINDS
        assert rb.untrusted_audit_kinds == vocabulary.UNTRUSTED_AUDIT_KINDS
        assert rb.enclave_metric_prefix == vocabulary.ENCLAVE_METRIC_PREFIX
