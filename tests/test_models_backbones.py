"""GCN and MLP backbone tests: shapes, interfaces, determinism, presets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import gcn_normalize
from repro.models import (
    M1,
    M2,
    M3,
    GCNBackbone,
    MlpBackbone,
    get_preset,
    preset_for_graph,
)
from repro.datasets import load_dataset


@pytest.fixture
def adj(tiny_graph):
    return gcn_normalize(tiny_graph.adjacency)


class TestGCNBackbone:
    def test_output_shape(self, tiny_graph, adj):
        model = GCNBackbone(tiny_graph.num_features, (16, 8, 3), seed=0)
        logits = model(tiny_graph.features, adj)
        assert logits.shape == (60, 3)

    def test_intermediates_match_channels(self, tiny_graph, adj):
        model = GCNBackbone(tiny_graph.num_features, (16, 8, 3), seed=0)
        outs = model.forward_with_intermediates(tiny_graph.features, adj)
        assert [o.shape[1] for o in outs] == [16, 8, 3]

    def test_hidden_layers_relu_nonnegative(self, tiny_graph, adj):
        model = GCNBackbone(tiny_graph.num_features, (16, 8, 3), seed=0)
        model.eval()
        outs = model.forward_with_intermediates(tiny_graph.features, adj)
        assert np.all(outs[0].data >= 0)
        assert np.all(outs[1].data >= 0)

    def test_final_layer_unactivated(self, tiny_graph, adj):
        model = GCNBackbone(tiny_graph.num_features, (16, 8, 3), seed=0)
        model.eval()
        outs = model.forward_with_intermediates(tiny_graph.features, adj)
        assert np.any(outs[-1].data < 0)  # raw logits go negative

    def test_embeddings_is_eval_mode_and_plain_arrays(self, tiny_graph, adj):
        model = GCNBackbone(tiny_graph.num_features, (16, 3), dropout=0.9, seed=0)
        model.train()
        a = model.embeddings(tiny_graph.features, adj)
        b = model.embeddings(tiny_graph.features, adj)
        np.testing.assert_array_equal(a[0], b[0])  # no dropout noise
        assert isinstance(a[0], np.ndarray)
        assert model.training  # restored

    def test_predict_returns_class_ids(self, tiny_graph, adj):
        model = GCNBackbone(tiny_graph.num_features, (8, 3), seed=0)
        preds = model.predict(tiny_graph.features, adj)
        assert preds.shape == (60,)
        assert set(np.unique(preds)) <= {0, 1, 2}

    def test_deterministic_seed(self, tiny_graph, adj):
        a = GCNBackbone(tiny_graph.num_features, (8, 3), seed=5)
        b = GCNBackbone(tiny_graph.num_features, (8, 3), seed=5)
        np.testing.assert_array_equal(
            a.layers[0].weight.data, b.layers[0].weight.data
        )

    def test_needs_at_least_one_layer(self):
        with pytest.raises(ValueError):
            GCNBackbone(4, ())

    def test_dropout_active_in_training(self, tiny_graph, adj):
        model = GCNBackbone(tiny_graph.num_features, (16, 3), dropout=0.5, seed=0)
        model.train()
        a = model(tiny_graph.features, adj).data
        b = model(tiny_graph.features, adj).data
        assert not np.allclose(a, b)

    def test_adjacency_affects_output(self, tiny_graph, adj):
        from repro.graph import CooAdjacency

        model = GCNBackbone(tiny_graph.num_features, (8, 3), seed=0)
        model.eval()
        empty = gcn_normalize(CooAdjacency.empty(60))
        with_edges = model(tiny_graph.features, adj).data
        without = model(tiny_graph.features, empty).data
        assert not np.allclose(with_edges, without)


class TestMlpBackbone:
    def test_ignores_adjacency(self, tiny_graph, adj):
        model = MlpBackbone(tiny_graph.num_features, (8, 3), seed=0)
        model.eval()
        a = model(tiny_graph.features, adj).data
        b = model(tiny_graph.features, None).data
        np.testing.assert_array_equal(a, b)

    def test_shapes_and_interface_parity(self, tiny_graph):
        model = MlpBackbone(tiny_graph.num_features, (16, 8, 3), seed=0)
        outs = model.forward_with_intermediates(tiny_graph.features)
        assert [o.shape[1] for o in outs] == [16, 8, 3]
        assert model.layer_output_dims() == (16, 8, 3)
        assert model.num_classes == 3

    def test_predict(self, tiny_graph):
        model = MlpBackbone(tiny_graph.num_features, (8, 3), seed=0)
        assert model.predict(tiny_graph.features).shape == (60,)

    def test_needs_layer(self):
        with pytest.raises(ValueError):
            MlpBackbone(4, ())


class TestPresets:
    def test_m1_channels(self):
        assert M1.backbone_channels(7) == (128, 32, 7)
        assert M1.rectifier_channels(7) == (128, 32, 7)

    def test_m3_depth(self):
        assert M3.backbone_channels(10) == (256, 64, 32, 16, 10)
        assert M3.rectifier_channels(10) == (64, 32, 10)

    def test_get_preset_case_insensitive(self):
        assert get_preset("m2") is M2

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            get_preset("M9")

    def test_theta_bb_matches_table2_cora(self):
        """Paper Table II: Cora θ_bb = 0.188 M."""
        backbone = M1.build_backbone(1433, 7)
        assert backbone.num_parameters() / 1e6 == pytest.approx(0.188, abs=0.003)

    def test_theta_bb_matches_table2_corafull(self):
        """Paper Table II: CoraFull θ_bb = 2.27 M."""
        backbone = M2.build_backbone(8710, 70)
        assert backbone.num_parameters() / 1e6 == pytest.approx(2.27, abs=0.06)

    def test_theta_bb_matches_table2_computer(self):
        """Paper Table II: Computer θ_bb = 0.216 M."""
        backbone = M3.build_backbone(767, 10)
        assert backbone.num_parameters() / 1e6 == pytest.approx(0.216, abs=0.005)

    def test_preset_for_graph_uses_registry(self):
        g = load_dataset("corafull")
        assert preset_for_graph(g).name == "M2"

    def test_preset_for_unknown_graph_defaults_m1(self, tiny_graph):
        assert preset_for_graph(tiny_graph).name == "M1"

    def test_build_mlp_backbone(self):
        mlp = M1.build_mlp_backbone(100, 5)
        assert mlp.layer_output_dims() == (128, 32, 5)
