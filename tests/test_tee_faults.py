"""Fault-injection harness: deterministic plans and per-ECALL fault firing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.deploy import SecureInferenceSession
from repro.errors import (
    ChannelCorruption,
    EnclaveKilled,
    EnclaveMemoryError,
)
from repro.tee import (
    FAULT_CORRUPT,
    FAULT_KILL,
    FAULT_KINDS,
    FAULT_LATENCY,
    FAULT_MEMORY,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)


@pytest.fixture
def session(trained_vault):
    run = trained_vault
    return SecureInferenceSession(
        backbone=run.backbone,
        rectifier=run.rectifiers["series"],
        substitute_adjacency=run.substitute,
        private_adjacency=run.graph.adjacency,
    )


class TestFaultPlan:
    def test_seeded_is_deterministic(self):
        a = FaultPlan.seeded(7, 100, kill_at=40, memory_faults=3,
                             corrupt_faults=2, latency_faults=2)
        b = FaultPlan.seeded(7, 100, kill_at=40, memory_faults=3,
                             corrupt_faults=2, latency_faults=2)
        assert a.specs == b.specs

    def test_different_seeds_differ(self):
        a = FaultPlan.seeded(0, 200, memory_faults=5, corrupt_faults=5)
        b = FaultPlan.seeded(1, 200, memory_faults=5, corrupt_faults=5)
        assert a.specs != b.specs

    def test_kill_is_pinned(self):
        plan = FaultPlan.seeded(3, 50, kill_at=17, memory_faults=2)
        kills = [s for s in plan.specs if s.kind == FAULT_KILL]
        assert [s.at_ecall for s in kills] == [17]

    def test_specs_sorted_and_unique(self):
        plan = FaultPlan.seeded(5, 80, kill_at=10, memory_faults=4,
                                corrupt_faults=4, latency_faults=4)
        indices = [s.at_ecall for s in plan.specs]
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices)

    def test_duplicate_indices_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan((FaultSpec(FAULT_MEMORY, 3), FaultSpec(FAULT_KILL, 3)))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("rowhammer", 0)

    def test_kinds_cover_the_enum(self):
        assert set(FAULT_KINDS) == {
            FAULT_MEMORY, FAULT_KILL, FAULT_CORRUPT, FAULT_LATENCY,
        }


class TestFaultInjector:
    def test_counter_advances_and_specs_fire_once(self):
        plan = FaultPlan((FaultSpec(FAULT_MEMORY, 1),))
        injector = FaultInjector(plan)
        assert injector.next_ecall() is None
        fired = injector.next_ecall()
        assert fired is not None and fired.kind == FAULT_MEMORY
        assert injector.next_ecall() is None
        assert injector.ecalls_observed == 3
        assert injector.summary()["memory"] == 1

    def test_corrupt_pending_peeks_without_advancing(self):
        plan = FaultPlan((FaultSpec(FAULT_CORRUPT, 0),))
        injector = FaultInjector(plan)
        assert injector.corrupt_pending()
        assert injector.corrupt_pending()  # peek, not consume
        assert injector.ecalls_observed == 0

    def test_corrupt_payloads_copies(self):
        injector = FaultInjector(FaultPlan((FaultSpec(FAULT_CORRUPT, 0),)))
        original = np.ones((4, 3))
        (flipped,) = injector.corrupt_payloads([original])
        assert not np.isfinite(flipped).all()
        assert np.isfinite(original).all()  # cache buffers never mutated


class TestEnclaveFaults:
    def _attach(self, session, *specs):
        injector = FaultInjector(FaultPlan(tuple(specs)))
        session.attach_fault_injector(injector)
        return injector

    def test_memory_fault_raises_but_enclave_survives(self, session, trained_vault):
        run = trained_vault
        self._attach(session, FaultSpec(FAULT_MEMORY, 0))
        with pytest.raises(EnclaveMemoryError):
            session.predict_nodes(run.graph.features, [0])
        assert session.enclave.alive
        labels, _ = session.predict_nodes(run.graph.features, [0])
        assert labels.shape == (1,)

    def test_kill_fault_destroys_the_enclave(self, session, trained_vault):
        run = trained_vault
        self._attach(session, FaultSpec(FAULT_KILL, 0))
        with pytest.raises(EnclaveKilled):
            session.predict_nodes(run.graph.features, [0])
        assert not session.enclave.alive
        # every later ECALL fails fast until a supervisor re-provisions
        with pytest.raises(EnclaveKilled):
            session.predict_nodes(run.graph.features, [1])

    def test_corruption_is_detected_in_enclave(self, session, trained_vault):
        run = trained_vault
        self._attach(session, FaultSpec(FAULT_CORRUPT, 0))
        with pytest.raises(ChannelCorruption):
            session.predict_nodes(run.graph.features, [0])
        # the enclave rejected the batch but stays serviceable
        labels, _ = session.predict_nodes(run.graph.features, [0])
        assert labels.shape == (1,)

    def test_latency_fault_inflates_transfer_time(self, session, trained_vault):
        run = trained_vault
        _, clean = session.predict_nodes(run.graph.features, [0])
        self._attach(session, FaultSpec(FAULT_LATENCY, 0, extra_seconds=0.25))
        labels, spiked = session.predict_nodes(run.graph.features, [0])
        assert spiked.transfer_seconds >= clean.transfer_seconds + 0.25
        assert labels.shape == (1,)

    def test_faulted_labels_match_fault_free(self, session, trained_vault):
        """Retrying after transient faults must not change any answer."""
        run = trained_vault
        targets = [3, 9, 27]
        baseline, _ = session.predict_nodes(run.graph.features, targets)
        self._attach(
            session,
            FaultSpec(FAULT_MEMORY, 0),
            FaultSpec(FAULT_CORRUPT, 1),
        )
        with pytest.raises(EnclaveMemoryError):
            session.predict_nodes(run.graph.features, targets)
        with pytest.raises(ChannelCorruption):
            session.predict_nodes(run.graph.features, targets)
        retried, _ = session.predict_nodes(run.graph.features, targets)
        np.testing.assert_array_equal(retried, baseline)
