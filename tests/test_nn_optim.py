"""Optimiser tests: convergence, momentum/weight-decay semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


def quadratic_loss(param: nn.Parameter) -> nn.Tensor:
    """(p - 3)² summed — minimum at 3."""
    diff = param - nn.Tensor(np.full(param.shape, 3.0))
    return (diff * diff).sum()


class TestSGD:
    def test_single_step_matches_formula(self):
        p = nn.Parameter(np.array([1.0]))
        opt = nn.SGD([p], lr=0.1)
        loss = quadratic_loss(p)
        loss.backward()
        opt.step()
        # grad = 2(1-3) = -4 -> p = 1 + 0.4
        assert p.data[0] == pytest.approx(1.4)

    def test_converges_on_quadratic(self):
        p = nn.Parameter(np.zeros(4))
        opt = nn.SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, 3.0, atol=1e-4)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = nn.Parameter(np.zeros(1))
            opt = nn.SGD([p], lr=0.01, momentum=momentum)
            for _ in range(20):
                opt.zero_grad()
                quadratic_loss(p).backward()
                opt.step()
            return abs(p.data[0] - 3.0)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        p = nn.Parameter(np.array([10.0]))
        opt = nn.SGD([p], lr=0.1, weight_decay=1.0)
        # zero-gradient step: only decay acts
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] == pytest.approx(9.0)

    def test_skips_parameters_without_grad(self):
        p = nn.Parameter(np.array([1.0]))
        nn.SGD([p], lr=0.1).step()
        assert p.data[0] == 1.0

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            nn.SGD([nn.Parameter(np.zeros(1))], lr=0.0)

    def test_rejects_empty_parameters(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)


class TestAdam:
    def test_first_step_size_is_lr(self):
        # Adam's bias correction makes the first update ≈ lr * sign(grad).
        p = nn.Parameter(np.array([0.0]))
        opt = nn.Adam([p], lr=0.05)
        p.grad = np.array([1.0])
        opt.step()
        assert p.data[0] == pytest.approx(-0.05, rel=1e-6)

    def test_converges_on_quadratic(self):
        p = nn.Parameter(np.zeros(3))
        opt = nn.Adam([p], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, 3.0, atol=1e-3)

    def test_weight_decay_pulls_towards_zero(self):
        p = nn.Parameter(np.array([5.0]))
        opt = nn.Adam([p], lr=0.1, weight_decay=1.0)
        for _ in range(50):
            p.zero_grad()
            p.grad = np.zeros(1)  # pure decay
            opt.step()
        assert abs(p.data[0]) < 5.0

    def test_trains_small_network(self):
        rng = np.random.default_rng(0)
        x = rng.random((40, 4))
        true_w = rng.random((4, 1))
        y = x @ true_w
        layer = nn.Linear(4, 1, rng=rng)
        opt = nn.Adam(layer.parameters(), lr=0.05)
        first_loss = None
        for step in range(300):
            opt.zero_grad()
            pred = layer(nn.Tensor(x))
            loss = ((pred - nn.Tensor(y)) ** 2.0).mean()
            if first_loss is None:
                first_loss = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first_loss * 0.01

    def test_rejects_bad_betas(self):
        with pytest.raises(ValueError):
            nn.Adam([nn.Parameter(np.zeros(1))], betas=(1.0, 0.999))

    def test_zero_grad_clears_all(self):
        p = nn.Parameter(np.zeros(2))
        opt = nn.Adam([p])
        p.grad = np.ones(2)
        opt.zero_grad()
        assert p.grad is None
