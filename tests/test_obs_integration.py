"""End-to-end observability: traced queries reproduce the Fig. 6 breakdown."""

from __future__ import annotations

import pytest

from repro.deploy import SecureInferenceSession, VaultServer
from repro.obs import Telemetry, parse_prometheus
from repro.training import TrainConfig

from tests.conftest import TINY_PRESET

SCHEME = "series"


@pytest.fixture
def deployment(trained_vault, session_graph):
    telemetry = Telemetry()
    session = SecureInferenceSession(
        trained_vault.backbone,
        trained_vault.rectifiers[SCHEME],
        trained_vault.substitute,
        session_graph.adjacency,
        telemetry=telemetry,
    )
    server = VaultServer(session, session_graph.features)
    return telemetry, server


@pytest.fixture
def reference_session(trained_vault, session_graph):
    """Uninstrumented twin deployment — the ground-truth profile source."""
    return SecureInferenceSession(
        trained_vault.backbone,
        trained_vault.rectifiers[SCHEME],
        trained_vault.substitute,
        session_graph.adjacency,
    )


class TestTracedQueryReproducesBreakdown:
    def test_span_tree_shape(self, deployment):
        telemetry, server = deployment
        server.query(5)
        root = telemetry.tracer.last()
        assert root.name == "query"
        assert root.attributes["batch_size"] == 1
        child_names = [c.name for c in root.children]
        assert child_names == ["backbone", "ecall"]
        ecall = root.find("ecall")
        assert ecall.origin == "enclave"
        assert [c.name for c in ecall.children] == [
            "transfer", "enclave", "paging"
        ]
        assert all(c.origin == "enclave" for c in ecall.children)

    def test_stages_match_inference_profile(
        self, deployment, reference_session, session_graph
    ):
        """Acceptance: one traced query == InferenceProfile.breakdown()."""
        telemetry, server = deployment
        server.query(5)  # cold: pays the full backbone pre-computation
        stages = telemetry.tracer.last().stages()

        _, profile = reference_session.predict_nodes(
            session_graph.features, [5]
        )
        breakdown = profile.breakdown()
        assert set(breakdown) <= set(stages)
        for stage, seconds in breakdown.items():
            assert stages[stage] == pytest.approx(seconds), stage
        # the ecall aggregate ties the enclave subtree together
        assert stages["ecall"] == pytest.approx(
            breakdown["transfer"] + breakdown["enclave"] + breakdown["paging"]
        )
        assert telemetry.tracer.last().seconds == pytest.approx(
            profile.total_seconds
        )

    def test_warm_query_has_zero_backbone_stage(self, deployment):
        telemetry, server = deployment
        server.query(3)  # cold
        server.query(3)  # warm: embeddings served from cache
        warm = telemetry.tracer.last()
        assert warm.stages()["backbone"] == 0.0
        assert warm.stages()["enclave"] > 0.0

    def test_every_query_appends_a_trace(self, deployment):
        telemetry, server = deployment
        server.serve([1, 2, 3, 4], batch_size=2)
        roots = telemetry.tracer.roots()
        assert [r.name for r in roots] == ["query", "query"]
        assert all(r.attributes["batch_size"] == 2 for r in roots)


class TestMetricsExport:
    def test_prometheus_parses_with_histogram_triples(self, deployment):
        telemetry, server = deployment
        server.serve([0, 1, 2, 1, 0], batch_size=1)
        parsed = parse_prometheus(telemetry.render_prometheus())
        assert parsed["vault_queries_total"][""] == 5
        assert parsed["vault_query_batch_seconds_count"][""] == 5
        assert parsed["vault_query_batch_seconds_sum"][""] == pytest.approx(
            server.stats.total_seconds
        )
        buckets = parsed["vault_query_batch_seconds_bucket"]
        assert buckets['{le="+Inf"}'] == 5
        # enclave-side series crossed the gate under the forced namespace
        assert parsed["enclave_ecalls_total"]['{stage="per_node"}'] == 5
        assert parsed["enclave_ecall_seconds_count"][""] == 5

    def test_server_stats_is_a_view_over_the_registry(self, deployment):
        telemetry, server = deployment
        server.serve([7, 7, 8], batch_size=1)
        stats = server.stats
        registry = telemetry.registry
        assert stats.registry is registry
        assert registry.get("vault_queries_total").value() == 3
        assert stats.queries_served == 3
        assert stats.per_node_counts == {7: 2, 8: 1}
        assert stats.hottest_nodes(1) == [7]
        assert stats.embedding_cache_misses == 1
        assert stats.embedding_cache_hits == 2
        summary = stats.latency_summary()
        assert summary["count"] == 3
        assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_disabled_telemetry_keeps_stats_but_skips_traces(
        self, trained_vault, session_graph
    ):
        telemetry = Telemetry(enabled=False)
        session = SecureInferenceSession(
            trained_vault.backbone,
            trained_vault.rectifiers[SCHEME],
            trained_vault.substitute,
            session_graph.adjacency,
            telemetry=telemetry,
        )
        server = VaultServer(session, session_graph.features)
        server.serve([0, 1, 2], batch_size=1)
        assert telemetry.tracer.roots() == []
        assert server.stats.queries_served == 3  # budget accounting intact
        parsed = parse_prometheus(telemetry.render_prometheus())
        assert not any(name.startswith("enclave_") for name in parsed)


class TestTrainingTelemetry:
    def test_run_gnnvault_meters_both_phases(self, tiny_graph):
        from repro.experiments import run_gnnvault

        telemetry = Telemetry()
        run_gnnvault(
            graph=tiny_graph,
            schemes=(SCHEME,),
            preset=TINY_PRESET,
            seed=0,
            train_config=TrainConfig(epochs=3, patience=3),
            telemetry=telemetry,
        )
        registry = telemetry.registry
        epochs = registry.get("training_epochs_total")
        # two classifier runs (original reference + backbone) + one rectifier
        assert epochs.value(phase="classifier") == 6
        assert epochs.value(phase="rectifier") == 3
        runs = registry.get("training_runs_total")
        assert runs.value(phase="classifier") == 2
        assert runs.value(phase="rectifier") == 1
        assert registry.get("training_epoch_seconds").count(phase="rectifier") == 3
        assert 0.0 <= registry.get(
            "training_best_val_accuracy"
        ).value(phase="rectifier") <= 1.0
