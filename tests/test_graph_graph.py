"""Graph container tests: validation, derived properties, adjacency swap."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CooAdjacency, Graph


@pytest.fixture
def small_graph():
    adjacency = CooAdjacency.from_edge_list(4, [(0, 1), (1, 2), (2, 3)])
    features = np.eye(4)
    labels = np.array([0, 0, 1, 1])
    return Graph(features=features, labels=labels, adjacency=adjacency, name="small")


class TestValidation:
    def test_feature_label_mismatch(self):
        adj = CooAdjacency.empty(3)
        with pytest.raises(ValueError):
            Graph(np.ones((3, 2)), np.zeros(2, dtype=int), adj)

    def test_adjacency_node_mismatch(self):
        adj = CooAdjacency.empty(5)
        with pytest.raises(ValueError):
            Graph(np.ones((3, 2)), np.zeros(3, dtype=int), adj)

    def test_features_must_be_2d(self):
        adj = CooAdjacency.empty(3)
        with pytest.raises(ValueError):
            Graph(np.ones(3), np.zeros(3, dtype=int), adj)

    def test_labels_must_be_1d(self):
        adj = CooAdjacency.empty(3)
        with pytest.raises(ValueError):
            Graph(np.ones((3, 2)), np.zeros((3, 1), dtype=int), adj)


class TestProperties:
    def test_counts(self, small_graph):
        assert small_graph.num_nodes == 4
        assert small_graph.num_features == 4
        assert small_graph.num_classes == 2
        assert small_graph.num_edges == 3

    def test_summary_mentions_everything(self, small_graph):
        text = small_graph.summary()
        assert "small" in text and "4 nodes" in text and "2 classes" in text

    def test_normalized_adjacency_shape(self, small_graph):
        norm = small_graph.normalized_adjacency()
        assert norm.shape == (4, 4)

    def test_dtype_coercion(self):
        adj = CooAdjacency.empty(2)
        g = Graph(np.ones((2, 2), dtype=np.float32), np.zeros(2, dtype=np.int8), adj)
        assert g.features.dtype == np.float64
        assert g.labels.dtype == np.int64


class TestWithAdjacency:
    def test_swaps_edges_keeps_features(self, small_graph):
        substitute = CooAdjacency.from_edge_list(4, [(0, 3)])
        swapped = small_graph.with_adjacency(substitute, name="sub")
        assert swapped.num_edges == 1
        assert swapped.name == "sub"
        np.testing.assert_array_equal(swapped.features, small_graph.features)
        # original untouched (frozen dataclass semantics)
        assert small_graph.num_edges == 3

    def test_name_defaults_to_original(self, small_graph):
        swapped = small_graph.with_adjacency(CooAdjacency.empty(4))
        assert swapped.name == "small"

    def test_rejects_wrong_size(self, small_graph):
        with pytest.raises(ValueError):
            small_graph.with_adjacency(CooAdjacency.empty(7))
