"""Micro-batch scheduler: exactness, fencing, policy, and backpressure.

The load-bearing property is the first class: whatever the batch policy,
client interleaving, or mid-stream graph updates, the scheduler's answers
must be bit-identical to the sequential per-query loop — batching changes
the schedule, never the labels.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.deploy import (
    BatchPolicy,
    GraphUpdate,
    MicroBatchScheduler,
    QueryBudgetExceeded,
    SchedulerOverloaded,
    SecureInferenceSession,
    ShardedBackboneWorkers,
    StripedLocks,
    VaultServer,
    seal_graph_update,
    zipf_workload,
)
from repro.graph import gcn_normalize


@pytest.fixture
def make_server(trained_vault):
    def factory(**kwargs):
        run = trained_vault
        session = SecureInferenceSession(
            run.backbone,
            run.rectifiers["series"],
            run.substitute,
            run.graph.adjacency,
        )
        return VaultServer(session, run.graph.features, **kwargs)

    return factory


def _concurrent_query(scheduler, workload, num_clients=4):
    """Drive ``workload`` through client threads; answers back in order."""
    labels = np.empty(len(workload), dtype=np.int64)
    errors = []

    def client(index):
        try:
            for position in range(index, len(workload), num_clients):
                labels[position] = scheduler.query(
                    int(workload[position]), client=f"client_{index}"
                )
        except Exception as exc:
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(num_clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    return labels


class TestBatchPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch_size": 0},
            {"max_wait_ms": -1.0},
            {"max_queue_depth": 0},
            {"max_inflight_per_client": -1},
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BatchPolicy(**kwargs)

    def test_striped_locks_are_stable_per_key(self):
        locks = StripedLocks(stripes=4)
        assert locks.lock_for("alice") is locks.lock_for("alice")
        with pytest.raises(ValueError):
            StripedLocks(stripes=0)


class TestShardedBackboneWorkers:
    def test_sharded_embeddings_bitwise_identical(self, trained_vault):
        run = trained_vault
        adj_norm = gcn_normalize(run.substitute)
        reference = run.backbone.embeddings(run.graph.features, adj_norm)
        with ShardedBackboneWorkers(num_workers=4) as workers:
            sharded = workers.embeddings(
                run.backbone, run.graph.features, adj_norm
            )
        assert len(sharded) == len(reference)
        for ours, theirs in zip(sharded, reference):
            assert ours.tobytes() == theirs.tobytes()

    def test_non_gcn_backbone_falls_back(self):
        sentinel = [np.zeros((2, 2))]

        class OddModel:
            layers = ("not", "convs")

            def embeddings(self, features, adj_norm):
                return sentinel

        with ShardedBackboneWorkers(num_workers=2) as workers:
            assert workers.embeddings(OddModel(), np.ones((2, 2)), None) is sentinel

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ShardedBackboneWorkers(num_workers=0)


class TestExactness:
    """Scheduler answers == sequential per-query loop, bit for bit."""

    @pytest.mark.parametrize("max_batch_size", [1, 3, 8])
    @pytest.mark.parametrize("seed", [0, 5])
    def test_concurrent_labels_match_sequential(
        self, make_server, trained_vault, max_batch_size, seed
    ):
        run = trained_vault
        workload = zipf_workload(
            run.graph.num_nodes, 60, alpha=1.3,
            rng=np.random.default_rng(seed),
        )
        sequential = make_server()
        expected = np.array(
            [sequential.query(int(node)) for node in workload], dtype=np.int64
        )
        server = make_server()
        policy = BatchPolicy(max_batch_size=max_batch_size, max_wait_ms=1.0)
        with MicroBatchScheduler(server, policy) as scheduler:
            actual = _concurrent_query(scheduler, workload)
            batches = scheduler.stats.batches
        assert actual.tobytes() == expected.tobytes()
        assert batches >= int(np.ceil(len(workload) / max_batch_size))

    def test_server_serve_scheduler_entry_point(self, make_server, trained_vault):
        run = trained_vault
        workload = zipf_workload(
            run.graph.num_nodes, 40, alpha=1.3,
            rng=np.random.default_rng(1),
        )
        expected = make_server().serve(workload, batch_size=1)
        via_policy = make_server().serve(
            workload, scheduler=BatchPolicy(max_batch_size=8)
        )
        assert via_policy.tobytes() == expected.tobytes()

    def test_sharded_workers_do_not_change_labels(
        self, make_server, trained_vault
    ):
        run = trained_vault
        workload = zipf_workload(
            run.graph.num_nodes, 40, alpha=1.3,
            rng=np.random.default_rng(2),
        )
        expected = make_server().serve(workload, batch_size=1)
        server = make_server()
        with ShardedBackboneWorkers(num_workers=3) as workers:
            with MicroBatchScheduler(
                server, BatchPolicy(max_batch_size=4), backbone_workers=workers
            ) as scheduler:
                actual = scheduler.serve(workload)
        assert actual.tobytes() == expected.tobytes()
        assert server.stats.embedding_cache_misses == 1

    def test_mid_stream_add_node_stays_exact(self, make_server, trained_vault):
        """Fenced update between bursts: both halves match sequential
        references taken at the same graph version."""
        run = trained_vault
        workload = zipf_workload(
            run.graph.num_nodes, 30, alpha=1.3,
            rng=np.random.default_rng(3),
        )
        blob = seal_graph_update(
            GraphUpdate(neighbours=(0, 1, 2)), run.rectifiers["series"]
        )
        row = run.graph.features[:3].mean(axis=0)

        reference = make_server()
        before_expected = np.array(
            [reference.query(int(n)) for n in workload], dtype=np.int64
        )
        reference.add_node(row, [0, 1], blob)
        after_expected = np.array(
            [reference.query(int(n)) for n in workload], dtype=np.int64
        )

        server = make_server()
        with MicroBatchScheduler(server, BatchPolicy(max_batch_size=4)) as sched:
            before = _concurrent_query(sched, workload)
            new_id = sched.add_node(row, [0, 1], blob)
            after = _concurrent_query(sched, workload)
            new_label = sched.query(new_id)
        assert before.tobytes() == before_expected.tobytes()
        assert after.tobytes() == after_expected.tobytes()
        assert new_id == run.graph.num_nodes
        assert new_label == int(reference.query(new_id))

    def test_add_node_racing_live_clients_never_corrupts(
        self, make_server, trained_vault
    ):
        """The fence under fire: clients stream queries while the graph
        grows mid-stream. Every query must complete without error and the
        post-update state must answer exactly like a fresh deployment."""
        run = trained_vault
        workload = zipf_workload(
            run.graph.num_nodes, 80, alpha=1.3,
            rng=np.random.default_rng(4),
        )
        blob = seal_graph_update(
            GraphUpdate(neighbours=(3, 4)), run.rectifiers["series"]
        )
        row = run.graph.features[3:5].mean(axis=0)

        server = make_server()
        with MicroBatchScheduler(server, BatchPolicy(max_batch_size=8)) as sched:
            update_done = []

            def updater():
                update_done.append(sched.add_node(row, [3], blob))

            update_thread = threading.Thread(target=updater)
            update_thread.start()
            _concurrent_query(sched, workload)
            update_thread.join()
            post = _concurrent_query(sched, workload)
        assert update_done == [run.graph.num_nodes]

        reference = make_server()
        reference.add_node(row, [3], blob)
        expected = np.array(
            [reference.query(int(n)) for n in workload], dtype=np.int64
        )
        assert post.tobytes() == expected.tobytes()


class TestBackpressureAndBudget:
    def test_queue_depth_overload(self, make_server):
        server = make_server()
        policy = BatchPolicy(max_batch_size=2, max_queue_depth=1)
        with MicroBatchScheduler(server, policy) as scheduler:
            with scheduler.paused():
                first = scheduler.submit([0])
                with pytest.raises(SchedulerOverloaded):
                    scheduler.submit([1])
            assert int(first.result(timeout=10.0)[0]) == server.query(0)

    def test_per_client_inflight_cap(self, make_server):
        server = make_server()
        policy = BatchPolicy(
            max_batch_size=4, max_inflight_per_client=1, max_queue_depth=8
        )
        with MicroBatchScheduler(server, policy) as scheduler:
            with scheduler.paused():
                held = scheduler.submit([0], client="greedy")
                with pytest.raises(SchedulerOverloaded):
                    scheduler.submit([1], client="greedy")
                other = scheduler.submit([1], client="patient")
            held.result(timeout=10.0)
            other.result(timeout=10.0)
            # the in-flight slot is released on completion
            scheduler.submit([2], client="greedy").result(timeout=10.0)

    def test_query_budget_enforced_across_clients(self, make_server):
        server = make_server(query_budget=10)
        with MicroBatchScheduler(server, BatchPolicy(max_batch_size=4)) as sched:
            workload = [int(n) for n in np.arange(10) % 5]
            _concurrent_query(sched, np.asarray(workload), num_clients=2)
            with pytest.raises(QueryBudgetExceeded):
                sched.query(0)

    def test_submit_after_close_rejected(self, make_server):
        scheduler = MicroBatchScheduler(make_server())
        scheduler.start()
        scheduler.close()
        with pytest.raises(RuntimeError):
            scheduler.submit([0])

    def test_close_drains_queued_requests(self, make_server):
        server = make_server()
        scheduler = MicroBatchScheduler(server, BatchPolicy(max_batch_size=4))
        scheduler.start()
        with scheduler.paused():  # hold formation back while we enqueue
            pending = [scheduler.submit([n]) for n in range(6)]
        scheduler.close()
        answers = [int(p.result(timeout=10.0)[0]) for p in pending]
        assert answers == [server.query(n) for n in range(6)]


class TestPipelineStats:
    def test_stats_account_every_query_and_batch(self, make_server, trained_vault):
        run = trained_vault
        workload = zipf_workload(
            run.graph.num_nodes, 48, alpha=1.3,
            rng=np.random.default_rng(6),
        )
        server = make_server()
        with MicroBatchScheduler(server, BatchPolicy(max_batch_size=6)) as sched:
            sched.serve(workload)
            snap = sched.stats.snapshot()
        assert snap["queries"] == len(workload)
        assert sum(
            int(size) * count
            for size, count in snap["batch_size_histogram"].items()
        ) == len(workload)
        assert snap["ecalls_per_query"] == snap["batches"] / snap["queries"]
        assert snap["targets_unique"] <= snap["targets_requested"]
        assert 0.0 <= snap["pipeline_overlap_fraction"] <= 1.0
        # the server-side view agrees with the pipeline's
        assert server.stats.queries_served == len(workload)

    def test_overlap_fraction_guards_zero_staged_seconds(self):
        from repro.deploy.scheduler import PipelineStats

        stats = PipelineStats()
        # A batch can legitimately stage in ~0 time (cache-hot backbone)
        # while the unlocked busy-ledger read reports a positive overlap
        # delta; the fraction must stay defined and inside [0, 1].
        stats.record_batch(
            num_queries=4, targets_requested=4, targets_unique=4,
            staged_seconds=0.0, enclave_seconds=0.001,
            overlapped_seconds=0.5,
        )
        assert stats.overlap_fraction == 0.0
        snap = stats.snapshot()
        assert snap["pipeline_overlap_fraction"] == 0.0

    def test_overlap_clamped_to_staged_and_nonnegative(self):
        from repro.deploy.scheduler import PipelineStats

        stats = PipelineStats()
        # racy busy-ledger reads can produce overlap > staged or < 0
        stats.record_batch(
            num_queries=2, targets_requested=2, targets_unique=2,
            staged_seconds=0.002, enclave_seconds=0.001,
            overlapped_seconds=99.0,
        )
        stats.record_batch(
            num_queries=2, targets_requested=2, targets_unique=2,
            staged_seconds=0.002, enclave_seconds=0.001,
            overlapped_seconds=-1.0,
        )
        assert 0.0 <= stats.overlap_fraction <= 1.0

    def test_publish_gauges_exports_scalars_only(self):
        from repro.deploy.scheduler import PipelineStats
        from repro.obs import MetricsRegistry

        stats = PipelineStats()
        stats.record_batch(
            num_queries=6, targets_requested=6, targets_unique=5,
            staged_seconds=0.004, enclave_seconds=0.002,
            overlapped_seconds=0.001,
        )
        registry = MetricsRegistry()
        stats.publish_gauges(registry)
        assert registry.get("pipeline_batches").value() == 1.0
        assert registry.get("pipeline_queries").value() == 6.0
        assert registry.get("pipeline_mean_batch_size").value() == 6.0
        assert registry.get("pipeline_overlap_fraction").value() == (
            stats.overlap_fraction
        )
        # the histogram is not a scalar and must not become a gauge
        assert registry.get("pipeline_batch_size_histogram") is None
