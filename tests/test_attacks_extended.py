"""Extended attack tests: supervised link stealing, MIA, extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import (
    confidence_attack,
    extraction_attack,
    label_only_attack,
    pair_features,
    supervised_link_stealing,
)
from repro.graph import gcn_normalize, make_sbm_graph


@pytest.fixture(scope="module")
def leaky_graph():
    g = make_sbm_graph(150, 4, 48, 6.0, homophily=0.85, seed=3)
    smoothed = gcn_normalize(g.adjacency) @ g.features
    smoothed = gcn_normalize(g.adjacency) @ smoothed
    return g, smoothed


class TestPairFeatures:
    def test_shape_one_column_per_metric(self, leaky_graph):
        g, emb = leaky_graph
        left = np.array([0, 1, 2])
        right = np.array([3, 4, 5])
        x = pair_features(emb, left, right)
        assert x.shape == (3, 6)

    def test_standardised(self, leaky_graph):
        g, emb = leaky_graph
        rng = np.random.default_rng(0)
        left = rng.integers(0, 150, 50)
        right = rng.integers(0, 150, 50)
        x = pair_features(emb, left, right)
        np.testing.assert_allclose(x.mean(axis=0), 0.0, atol=1e-9)

    def test_custom_metric_subset(self, leaky_graph):
        g, emb = leaky_graph
        x = pair_features(emb, np.array([0]), np.array([1]), metrics=("cosine",))
        assert x.shape == (1, 1)


class TestSupervisedLinkStealing:
    def test_beats_random_on_leaky_embeddings(self, leaky_graph):
        g, emb = leaky_graph
        result = supervised_link_stealing(
            emb, g.adjacency, num_pairs=600, epochs=150, seed=0
        )
        assert result.auc > 0.7

    def test_supervision_helps_over_noise_embeddings(self, leaky_graph):
        g, _ = leaky_graph
        noise = np.random.default_rng(0).random((150, 16))
        result = supervised_link_stealing(
            noise, g.adjacency, num_pairs=400, epochs=100, seed=0
        )
        assert abs(result.auc - 0.5) < 0.15  # nothing to learn

    def test_split_bookkeeping(self, leaky_graph):
        g, emb = leaky_graph
        result = supervised_link_stealing(
            emb, g.adjacency, num_pairs=400, train_fraction=0.25, epochs=20, seed=0
        )
        total = result.num_train_pairs + result.num_test_pairs
        assert result.num_train_pairs == pytest.approx(0.25 * total, abs=1)

    def test_invalid_fraction(self, leaky_graph):
        g, emb = leaky_graph
        with pytest.raises(ValueError):
            supervised_link_stealing(emb, g.adjacency, train_fraction=1.0)

    def test_accepts_layer_list(self, leaky_graph):
        g, emb = leaky_graph
        result = supervised_link_stealing(
            [emb[:, :8], emb[:, 8:]], g.adjacency, num_pairs=300, epochs=20, seed=0
        )
        assert 0.0 <= result.auc <= 1.0


class TestMembership:
    def _overfit_setup(self):
        """Victim logits that are confidently right on members only."""
        rng = np.random.default_rng(0)
        n, c = 200, 4
        labels = rng.integers(0, c, n)
        members = np.arange(0, 100)
        nonmembers = np.arange(100, 200)
        logits = rng.normal(0, 1.0, (n, c))
        logits[members, labels[members]] += 6.0  # memorised
        return logits, labels, members, nonmembers

    def test_confidence_attack_detects_overfitting(self):
        logits, labels, members, nonmembers = self._overfit_setup()
        result = confidence_attack(logits, labels, members, nonmembers)
        assert result.auc > 0.85

    def test_confidence_attack_blind_without_gap(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 3, 100)
        logits = rng.normal(0, 1, (100, 3))
        result = confidence_attack(logits, labels, np.arange(50), np.arange(50, 100))
        assert abs(result.auc - 0.5) < 0.15

    def test_label_only_attack_bounded_by_accuracy_gap(self):
        logits, labels, members, nonmembers = self._overfit_setup()
        hard = logits.argmax(axis=1)
        soft_result = confidence_attack(logits, labels, members, nonmembers)
        hard_result = label_only_attack(hard, labels, members, nonmembers)
        # label-only collapses the signal: strictly weaker than logits here
        assert hard_result.auc < soft_result.auc

    def test_result_records_signal(self):
        logits, labels, members, nonmembers = self._overfit_setup()
        assert confidence_attack(logits, labels, members, nonmembers).signal == (
            "loss threshold"
        )
        assert label_only_attack(
            logits.argmax(axis=1), labels, members, nonmembers
        ).signal == "correctness"


class TestExtraction:
    @pytest.fixture(scope="class")
    def victim(self):
        """A feature-predictable victim: labels derived from features."""
        rng = np.random.default_rng(2)
        n, d, c = 300, 16, 3
        features = rng.random((n, d))
        true_labels = features[:, :c].argmax(axis=1)
        # victim logits: confident, mostly correct
        logits = np.eye(c)[true_labels] * 4.0 + rng.normal(0, 0.3, (n, c))
        return features, logits, true_labels

    def test_soft_label_extraction(self, victim):
        features, logits, labels = victim
        result = extraction_attack(features, logits, labels, epochs=150, seed=0)
        assert result.supervision == "logits"
        assert result.fidelity > 0.8

    def test_hard_label_extraction(self, victim):
        features, logits, labels = victim
        hard = logits.argmax(axis=1)
        result = extraction_attack(features, hard, labels, epochs=150, seed=0)
        assert result.supervision == "labels"
        assert 0.0 <= result.fidelity <= 1.0

    def test_holdout_validation(self, victim):
        features, logits, labels = victim
        with pytest.raises(ValueError):
            extraction_attack(features, logits, labels, holdout_fraction=0.0)

    def test_fidelity_measured_on_holdout_only(self, victim):
        """Same seed → same split → deterministic fidelity."""
        features, logits, labels = victim
        a = extraction_attack(features, logits, labels, epochs=30, seed=5)
        b = extraction_attack(features, logits, labels, epochs=30, seed=5)
        assert a.fidelity == b.fidelity
