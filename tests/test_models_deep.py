"""Residual GCN tests: interface parity and over-smoothing resistance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import per_class_split
from repro.graph import gcn_normalize, make_sbm_graph
from repro.models import GCNBackbone, ResGCNBackbone, make_rectifier
from repro.training import TrainConfig, train_node_classifier, train_rectifier


class TestInterface:
    def test_shapes(self, tiny_graph):
        adj = gcn_normalize(tiny_graph.adjacency)
        model = ResGCNBackbone(tiny_graph.num_features, (16, 8, 3), seed=0)
        assert model(tiny_graph.features, adj).shape == (60, 3)
        outs = model.forward_with_intermediates(tiny_graph.features, adj)
        assert [o.shape[1] for o in outs] == [16, 8, 3]
        assert model.layer_output_dims() == (16, 8, 3)
        assert model.predict(tiny_graph.features, adj).shape == (60,)

    def test_needs_layer(self):
        with pytest.raises(ValueError):
            ResGCNBackbone(4, ())

    def test_shortcut_projection_only_when_needed(self):
        model = ResGCNBackbone(8, (8, 4), seed=0)
        assert model.layers[0].shortcut is None  # 8 -> 8
        assert model.layers[1].shortcut is not None  # 8 -> 4

    def test_residual_changes_output(self, tiny_graph):
        """Same seed: plain vs residual must genuinely differ."""
        adj = gcn_normalize(tiny_graph.adjacency)
        plain = GCNBackbone(tiny_graph.num_features, (16, 3), seed=0)
        residual = ResGCNBackbone(tiny_graph.num_features, (16, 3), seed=0)
        plain.eval(), residual.eval()
        a = plain(tiny_graph.features, adj).data
        b = residual(tiny_graph.features, adj).data
        assert not np.allclose(a, b)


class TestOverSmoothingResistance:
    @pytest.fixture(scope="class")
    def dense_graph(self):
        """High-degree graph where deep plain GCNs over-smooth."""
        g = make_sbm_graph(500, 5, 48, 40.0, homophily=0.6, seed=11)
        return g, per_class_split(g.labels, 20, seed=0)

    def test_residual_beats_plain_when_deep(self, dense_graph):
        g, split = dense_graph
        adj = gcn_normalize(g.adjacency)
        cfg = TrainConfig(epochs=120, patience=40)
        channels = (32, 16, 16, 8, 5)
        plain = GCNBackbone(g.num_features, channels, seed=1)
        plain_result = train_node_classifier(
            plain, g.features, adj, g.labels, split, cfg
        )
        residual = ResGCNBackbone(g.num_features, channels, seed=1)
        residual_result = train_node_classifier(
            residual, g.features, adj, g.labels, split, cfg
        )
        assert residual_result.test_accuracy > plain_result.test_accuracy + 0.1

    def test_plugs_into_vault_pipeline(self, tiny_graph, tiny_split):
        """ResGCN works as a GNNVault backbone end to end."""
        from repro.substitute import KnnGraphBuilder

        sub_adj = gcn_normalize(KnnGraphBuilder(2)(tiny_graph.features))
        real_adj = gcn_normalize(tiny_graph.adjacency)
        cfg = TrainConfig(epochs=40, patience=20)
        backbone = ResGCNBackbone(tiny_graph.num_features, (16, 8, 3), seed=0)
        train_node_classifier(
            backbone, tiny_graph.features, sub_adj, tiny_graph.labels,
            tiny_split, cfg,
        )
        rectifier = make_rectifier("parallel", (16, 8, 3), (16, 8, 3), seed=1)
        result = train_rectifier(
            rectifier, backbone, tiny_graph.features, sub_adj, real_adj,
            tiny_graph.labels, tiny_split, cfg,
        )
        assert result.test_accuracy > 0.5
