"""Metrics registry unit tests: counters, gauges, histograms, exposition."""

from __future__ import annotations

import math
import threading

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
    render_prometheus,
)


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("requests_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labelled_series_are_independent(self):
        counter = Counter("events_total")
        counter.inc(result="hit")
        counter.inc(result="hit")
        counter.inc(result="miss")
        assert counter.value(result="hit") == 2
        assert counter.value(result="miss") == 1
        assert counter.value() == 0

    def test_label_order_is_canonical(self):
        counter = Counter("c_total")
        counter.inc(a="1", b="2")
        assert counter.value(b="2", a="1") == 1

    def test_decrease_rejected(self):
        with pytest.raises(ValueError):
            Counter("c_total").inc(-1)

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            Counter("bad name")
        with pytest.raises(ValueError):
            Counter("ok_total").inc(**{"bad-label": "x"})


class TestGauge:
    def test_set_and_inc(self):
        gauge = Gauge("depth")
        gauge.set(4)
        gauge.inc(2)
        assert gauge.value() == 6

    def test_set_max_keeps_watermark(self):
        gauge = Gauge("peak_bytes")
        gauge.set_max(100)
        gauge.set_max(40)
        assert gauge.value() == 100
        gauge.set_max(250)
        assert gauge.value() == 250


class TestHistogram:
    def test_count_sum_and_buckets(self):
        hist = Histogram("latency_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.count() == 4
        assert hist.total() == pytest.approx(55.55)

    def test_percentiles_monotone(self):
        hist = Histogram("latency_seconds")
        for i in range(100):
            hist.observe(0.001 * (i + 1))  # 1..100 ms
        p50 = hist.percentile(0.50)
        p95 = hist.percentile(0.95)
        p99 = hist.percentile(0.99)
        assert p50 <= p95 <= p99
        assert 0.025 < p50 < 0.1
        assert p99 <= hist.buckets[-1]

    def test_summary_keys(self):
        hist = Histogram("h_seconds")
        hist.observe(0.01)
        summary = hist.summary()
        assert set(summary) == {"count", "sum", "p50", "p95", "p99"}
        assert summary["count"] == 1

    def test_empty_percentile_is_nan(self):
        assert math.isnan(Histogram("h_seconds").percentile(0.5))

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_bad_percentile_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h_seconds").percentile(1.5)


class TestRegistry:
    def test_create_or_fetch_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_snapshot_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("served_total").inc(3)
        registry.histogram("lat_seconds").observe(0.2)
        snap = registry.snapshot()
        assert snap["served_total"]["series"][""] == 3
        assert snap["lat_seconds"]["series"][""]["count"] == 1


class TestPrometheusExposition:
    @pytest.fixture
    def registry(self):
        registry = MetricsRegistry()
        registry.counter("queries_total", help="queries").inc(7, result="ok")
        registry.gauge("peak_bytes").set(1024)
        hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        return registry

    def test_round_trips_through_parser(self, registry):
        parsed = parse_prometheus(render_prometheus(registry))
        assert parsed["queries_total"]['{result="ok"}'] == 7
        assert parsed["peak_bytes"][""] == 1024

    def test_histogram_triples(self, registry):
        parsed = parse_prometheus(render_prometheus(registry))
        assert parsed["lat_seconds_count"][""] == 3
        assert parsed["lat_seconds_sum"][""] == pytest.approx(5.55)
        buckets = parsed["lat_seconds_bucket"]
        assert buckets['{le="0.1"}'] == 1
        assert buckets['{le="1.0"}'] == 2
        assert buckets['{le="+Inf"}'] == 3

    def test_help_and_type_lines(self, registry):
        text = render_prometheus(registry)
        assert "# HELP queries_total queries" in text
        assert "# TYPE queries_total counter" in text
        assert "# TYPE lat_seconds histogram" in text

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("not a metric line at all {")


class TestThreadSafety:
    """Scheduler worker threads record concurrently; no update may drop."""

    def test_counter_increments_are_not_lost(self):
        counter = Counter("vault_ts_counter")
        key = counter._values  # noqa: F841 — force first-series creation race
        threads, per_thread = 8, 2000

        def worker():
            for _ in range(per_thread):
                counter.inc()
                counter.inc(2.0, result="hit")

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert counter.value() == threads * per_thread
        assert counter.value(result="hit") == 2.0 * threads * per_thread

    def test_histogram_observations_are_not_lost(self):
        histogram = Histogram("vault_ts_hist", buckets=(1.0, 2.0, 4.0))
        threads, per_thread = 8, 1000

        def worker(value):
            for _ in range(per_thread):
                histogram.observe(value, path="warm")

        pool = [
            threading.Thread(target=worker, args=(float(i % 4),))
            for i in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert histogram.count(path="warm") == threads * per_thread
        # integer-valued observations sum exactly in float64
        expected_sum = per_thread * sum(float(i % 4) for i in range(threads))
        assert histogram.total(path="warm") == expected_sum

    def test_gauge_watermark_under_contention(self):
        gauge = Gauge("vault_ts_gauge")

        def worker(offset):
            for value in range(1000):
                gauge.set_max(float(value + offset))

        pool = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert gauge.value() == 999.0 + 5

    def test_registry_create_race_yields_one_family(self):
        registry = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            seen.append(registry.counter("vault_ts_race"))

        pool = [threading.Thread(target=worker) for _ in range(8)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert len({id(metric) for metric in seen}) == 1
