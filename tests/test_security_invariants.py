"""Security invariants: the threat-model guarantees GNNVault must uphold.

These are integration tests of the defence itself, phrased as adversarial
checks: what the untrusted world can see must not contain the private
assets, and the enclave boundary must only ever emit labels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import link_stealing_attack
from repro.deploy import SecureInferenceSession
from repro.errors import SecurityViolation
from repro.graph import edge_overlap, gcn_normalize
from repro.tee import LabelOnlyResult, OneWayChannel


@pytest.fixture
def session(trained_vault):
    run = trained_vault
    return SecureInferenceSession(
        backbone=run.backbone,
        rectifier=run.rectifiers["parallel"],
        substitute_adjacency=run.substitute,
        private_adjacency=run.graph.adjacency,
    )


class TestModelIpProtection:
    def test_untrusted_world_holds_only_backbone_weights(self, session, trained_vault):
        run = trained_vault
        view = session.adversary_view()
        exposed = set(view["backbone_state"])
        rectifier_params = set(run.rectifiers["parallel"].state_dict())
        # the name spaces could coincide; compare actual values
        for name in exposed & rectifier_params:
            assert not np.array_equal(
                view["backbone_state"][name],
                run.rectifiers["parallel"].state_dict()[name],
            )

    def test_backbone_is_the_inaccurate_model(self, trained_vault):
        """The accurate model (rectifier) must not be derivable from the
        untrusted world alone: the backbone alone scores worse."""
        run = trained_vault
        assert run.p_bb < run.p_rec["parallel"]


class TestEdgePrivacy:
    def test_substitute_graph_is_not_the_private_graph(self, trained_vault):
        run = trained_vault
        assert edge_overlap(run.substitute, run.graph.adjacency) < 0.6

    def test_exposed_embeddings_leak_no_more_than_features(self, trained_vault):
        """Table IV's qualitative claim at mini scale: attacking what
        GNNVault exposes is no better than attacking raw features."""
        run = trained_vault
        gv = link_stealing_attack(
            run.backbone_embeddings(), run.graph.adjacency, seed=0
        )
        base = link_stealing_attack(
            run.graph.features, run.graph.adjacency, seed=0
        )
        org = link_stealing_attack(
            run.original_embeddings(), run.graph.adjacency, seed=0
        )
        assert org.mean_auc() > gv.mean_auc()
        assert gv.mean_auc() <= base.mean_auc() + 0.1

    def test_private_adjacency_never_in_untrusted_view(self, session, trained_vault):
        view = session.adversary_view()
        observable = view["substitute_adjacency"]
        private = trained_vault.graph.adjacency
        assert observable.edge_set() != private.edge_set()


class TestOneWayFlow:
    def test_enclave_outputs_only_labels(self, session, trained_vault):
        labels, _ = session.predict(trained_vault.graph.features)
        assert labels.dtype.kind == "i"

    def test_channel_rejects_embedding_export(self):
        channel = OneWayChannel()
        with pytest.raises(SecurityViolation):
            channel.publish(np.random.default_rng(0).random((10, 8)))

    def test_channel_rejects_float_labels(self):
        channel = OneWayChannel()
        with pytest.raises(SecurityViolation):
            channel.publish(LabelOnlyResult(np.array([0.0, 1.0])))

    def test_rectifier_gradients_never_reach_backbone(self, trained_vault):
        """Training-time one-way flow (partition-before-training)."""
        from repro import nn

        run = trained_vault
        backbone = run.backbone
        backbone.unfreeze()
        backbone.zero_grad()
        outs = backbone.forward_with_intermediates(
            nn.Tensor(run.graph.features), gcn_normalize(run.substitute)
        )
        rect = run.rectifiers["parallel"]
        rect(outs, run.graph.normalized_adjacency()).sum().backward()
        assert all(p.grad is None for p in backbone.parameters())
        backbone.freeze()

    def test_transfer_log_is_the_only_observable_flow(self, session, trained_vault):
        """Everything that crossed into the enclave is in the audit log and
        consists of backbone embeddings only (no raw private data)."""
        run = trained_vault
        # fresh channel per predict; inspect through a manual run
        channel = OneWayChannel()
        embeddings = run.backbone_embeddings()
        for layer in run.rectifiers["parallel"].consumed_layers():
            channel.push(embeddings[layer], description=f"layer{layer}")
        descriptions = [r.description for r in channel.transfer_log]
        assert all(d.startswith("layer") for d in descriptions)


class TestTelemetryRedaction:
    """Enclave-originated telemetry is aggregate-only: no node ids, no
    edges, no embedding payloads may cross the boundary via the exporters."""

    @pytest.fixture
    def served(self, trained_vault):
        from repro.deploy import VaultServer, zipf_workload
        from repro.obs import Telemetry

        run = trained_vault
        telemetry = Telemetry(max_traces=64)
        session = SecureInferenceSession(
            backbone=run.backbone,
            rectifier=run.rectifiers["parallel"],
            substitute_adjacency=run.substitute,
            private_adjacency=run.graph.adjacency,
            telemetry=telemetry,
        )
        server = VaultServer(session, run.graph.features)
        workload = zipf_workload(run.graph.num_nodes, 25, alpha=1.3, seed=5)
        server.serve(workload, batch_size=1)
        return telemetry, run

    @staticmethod
    def _enclave_spans(span):
        if span.origin == "enclave":
            yield span
        for child in span.children:
            yield from TestTelemetryRedaction._enclave_spans(child)

    def test_enclave_spans_carry_only_scalar_aggregates(self, served):
        import numbers

        from repro.obs.vocabulary import forbidden_words_in

        telemetry, _ = served
        spans = [
            s for root in telemetry.tracer.roots()
            for s in self._enclave_spans(root)
        ]
        assert spans, "workload produced no enclave-originated spans"
        for span in spans:
            for key, value in span.attributes.items():
                assert not forbidden_words_in(key), key
                assert isinstance(value, numbers.Number), (key, value)

    def test_trace_export_contains_no_embedding_payloads(self, served):
        import json

        telemetry, run = served
        enclave_dump = json.dumps([
            span.to_dict()
            for root in telemetry.tracer.roots()
            for span in self._enclave_spans(root)
        ])
        # exact reprs of private embedding entries must never appear
        sample = run.backbone_embeddings()[0].ravel()[:50]
        for value in sample:
            if abs(value) > 1e-9:
                assert repr(float(value)) not in enclave_dump

    def test_prometheus_enclave_series_have_no_id_labels(self, served):
        import re

        from repro.obs import parse_prometheus

        telemetry, _ = served
        parsed = parse_prometheus(telemetry.render_prometheus())
        enclave_names = [n for n in parsed if n.startswith("enclave_")]
        assert enclave_names, "workload produced no enclave metrics"
        for name in enclave_names:
            for label_chunk in parsed[name]:
                # histogram bucket bounds (le=...) are structural, not data
                chunk = re.sub(r'le="[^"]*"', "", label_chunk)
                # enum words only: a digit in a label value is an id leak
                assert not re.search(r"\d", chunk), (name, label_chunk)
        # contrast: the *untrusted* side legitimately tracks per-node
        # counts (it sees the queries anyway) — redaction is per-origin
        assert any(
            '{node="' in chunk for chunk in parsed["vault_node_queries_total"]
        )

    def test_gate_blocks_smuggling_attempts(self, served):
        from repro.obs import TelemetryLeak

        telemetry, run = served
        gate = telemetry.enclave_gate()
        with pytest.raises(TelemetryLeak):
            gate.inc("enclave_node_ids_total")
        with pytest.raises(TelemetryLeak):
            gate.inc("enclave_ecalls_total", target=str(5))
        with gate.span("ecall") as span:
            with pytest.raises(TelemetryLeak):
                span.set_attribute("touched_rows", [1, 2, 3])
            with pytest.raises(TelemetryLeak):
                span.set_attribute(
                    "payload_bytes", run.graph.features[:2]
                )


class TestLabelOnlyRationale:
    def test_logits_leak_more_than_labels(self, trained_vault):
        """Why the paper keeps logits inside: attacking rectifier logits
        succeeds better than attacking hard labels."""
        run = trained_vault
        rect = run.rectifiers["parallel"]
        outs = rect.forward_with_intermediates(
            run.backbone_embeddings(), run.graph.normalized_adjacency()
        )
        logits = outs[-1].data
        labels = logits.argmax(axis=1)
        one_hot = np.eye(logits.shape[1])[labels]
        logit_attack = link_stealing_attack(logits, run.graph.adjacency, seed=0)
        label_attack = link_stealing_attack(one_hot, run.graph.adjacency, seed=0)
        assert logit_attack.mean_auc() >= label_attack.mean_auc() - 0.02


class TestAuditTrustBoundary:
    """The audit log spans both worlds, but enclave events have exactly one
    door: the telemetry gate, which schema-checks every kind and field."""

    @pytest.fixture
    def deployment(self, trained_vault):
        from repro.obs import Telemetry

        run = trained_vault
        telemetry = Telemetry()
        session = SecureInferenceSession(
            backbone=run.backbone,
            rectifier=run.rectifiers["parallel"],
            substitute_adjacency=run.substitute,
            private_adjacency=run.graph.adjacency,
            telemetry=telemetry,
        )
        return telemetry, session

    def test_provisioning_ceremony_is_audited_with_enclave_origin(
        self, deployment
    ):
        telemetry, _ = deployment
        enclave_events = telemetry.audit.events(origin="enclave")
        kinds = [event.kind for event in enclave_events]
        assert "attestation" in kinds
        assert kinds.count("provision") == 2  # weights + private graph
        stages = {e.get("stage") for e in enclave_events if e.kind == "provision"}
        assert stages == {"weights", "private"}

    def test_untrusted_append_refuses_enclave_kinds(self, deployment):
        telemetry, _ = deployment
        with pytest.raises(SecurityViolation, match="EnclaveTelemetryGate"):
            telemetry.audit.append("provision", stage="weights")

    def test_gate_refuses_untrusted_only_kinds(self, deployment):
        from repro.obs import TelemetryLeak

        telemetry, _ = deployment
        gate = telemetry.enclave_gate()
        # the enclave must not be able to forge host-side narrative events
        for kind in ("query_served", "model_update", "security_alert"):
            with pytest.raises(TelemetryLeak):
                gate.audit(kind)

    def test_gate_blocks_audit_field_smuggling(self, deployment):
        from repro.obs import TelemetryLeak

        telemetry, _ = deployment
        gate = telemetry.enclave_gate()
        # per-entity keys are vocabulary-rejected
        with pytest.raises(TelemetryLeak):
            gate.audit("graph_update", node_count=3)
        with pytest.raises(TelemetryLeak):
            gate.audit("graph_update", touched_edges=7)
        # free-form strings cannot ride on enum keys
        with pytest.raises(TelemetryLeak):
            gate.audit("attestation", result="node 17 and 21 linked")
        # non-enum keys cannot carry strings at all
        with pytest.raises(TelemetryLeak):
            gate.audit("cache_invalidation", invalidated_entries="payload")
        # arrays are not scalars
        with pytest.raises(TelemetryLeak):
            gate.audit("graph_update", applied_count=np.arange(4))

    def test_every_enclave_event_satisfies_the_gate_schema(self, trained_vault):
        """End-to-end: serve traffic + apply an online update, then check
        every enclave-origin audit event against the redaction schema."""
        from repro.deploy import VaultServer, seal_graph_update, zipf_workload
        from repro.deploy.updates import GraphUpdate
        from repro.obs import Telemetry
        from repro.obs.redaction import (
            AUDIT_ENUM_KEYS,
            _LABEL_VALUE_RE,
            check_aggregate_key,
            check_scalar,
        )
        from repro.obs.audit import ENCLAVE_AUDIT_KINDS

        run = trained_vault
        telemetry = Telemetry()
        session = SecureInferenceSession(
            backbone=run.backbone,
            rectifier=run.rectifiers["parallel"],
            substitute_adjacency=run.substitute,
            private_adjacency=run.graph.adjacency,
            telemetry=telemetry,
        )
        server = VaultServer(session, run.graph.features)
        server.serve(zipf_workload(run.graph.num_nodes, 20, seed=1))
        new_id = run.graph.num_nodes
        update = GraphUpdate(neighbours=(0, 1))
        server.add_node(
            run.graph.features[:1],
            substitute_neighbours=(2, 3),
            sealed_update=seal_graph_update(update, run.rectifiers["parallel"]),
        )
        assert session.feature_version == 1
        server.query(new_id)

        enclave_events = telemetry.audit.events(origin="enclave")
        assert enclave_events, "deployment produced no enclave audit events"
        kinds = {event.kind for event in enclave_events}
        assert "graph_update" in kinds  # the online update crossed the gate
        for event in enclave_events:
            assert event.kind in ENCLAVE_AUDIT_KINDS
            for key, value in event.fields:
                check_aggregate_key(key, allowed=AUDIT_ENUM_KEYS)
                if isinstance(value, str):
                    assert key in AUDIT_ENUM_KEYS
                    assert _LABEL_VALUE_RE.match(value), (key, value)
                else:
                    check_scalar(key, value)

    def test_attestation_failures_are_audited(self, trained_vault):
        from repro.obs import AuditLog
        from repro.tee.attestation import AttestationError, verify_quote
        from repro.tee.enclave import RectifierEnclave

        run = trained_vault
        enclave = RectifierEnclave(run.rectifiers["parallel"])
        quote = enclave.attest(challenge="c")
        audit = AuditLog()
        with pytest.raises(AttestationError):
            verify_quote(quote, "wrong-measurement", "c", audit=audit)
        event = audit.events(kind="attestation")[0]
        assert event.origin == "untrusted"
        assert event["result"] == "measurement_mismatch"
        assert event["verified"] is False


class TestPipelinedServing:
    """Micro-batching must not widen the enclave boundary.

    Coalescing concurrent queries into one ECALL changes the *schedule*
    of the one-way channel, not its direction or contents: embeddings
    still only flow in, labels still only flow out, and every world
    transition stays countable from the outside.
    """

    @pytest.fixture
    def pipelined(self, trained_vault):
        import threading

        from repro.deploy import (
            BatchPolicy, MicroBatchScheduler, VaultServer, zipf_workload,
        )
        from repro.obs import Telemetry

        run = trained_vault
        telemetry = Telemetry(max_traces=64)
        session = SecureInferenceSession(
            backbone=run.backbone,
            rectifier=run.rectifiers["parallel"],
            substitute_adjacency=run.substitute,
            private_adjacency=run.graph.adjacency,
            telemetry=telemetry,
        )
        server = VaultServer(session, run.graph.features)
        workload = zipf_workload(run.graph.num_nodes, 48, alpha=1.3, seed=5)
        with MicroBatchScheduler(server, BatchPolicy(max_batch_size=8)) as sched:
            threads = [
                threading.Thread(
                    target=lambda shard=workload[i::4], c=f"client_{i}": [
                        sched.query(int(n), client=c) for n in shard
                    ]
                )
                for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            batches = sched.stats.batches
        return telemetry, session, batches

    def test_one_ecall_transition_per_microbatch(self, pipelined):
        """The amortisation claim is externally auditable: the enclave's
        lifetime transition counter equals the number of micro-batches."""
        _, session, batches = pipelined
        assert batches > 0
        assert session.enclave.ecall_transitions == batches

    def test_coalesced_payload_is_one_logged_transfer(self, trained_vault):
        run = trained_vault
        embeddings = run.backbone_embeddings()
        channel = OneWayChannel()
        block = [embeddings[0], embeddings[1]]
        channel.push_coalesced(block, description="backbone_microbatch")
        assert len(channel.transfer_log) == 1
        record = channel.transfer_log[0]
        assert record.description == "backbone_microbatch"
        assert record.num_bytes == sum(e.nbytes for e in block)
        with pytest.raises(ValueError):
            channel.push_coalesced([], description="empty")

    def test_microbatch_ecall_rejects_empty_requests(self, trained_vault):
        run = trained_vault
        session = SecureInferenceSession(
            backbone=run.backbone,
            rectifier=run.rectifiers["parallel"],
            substitute_adjacency=run.substitute,
            private_adjacency=run.graph.adjacency,
        )
        embeddings = run.backbone_embeddings()
        with pytest.raises(SecurityViolation):
            session.predict_microbatch_precomputed(embeddings, [])
        with pytest.raises(SecurityViolation):
            session.predict_microbatch_precomputed(embeddings, [[3], []])

    def test_microbatch_egress_is_labels_only(self, trained_vault):
        run = trained_vault
        session = SecureInferenceSession(
            backbone=run.backbone,
            rectifier=run.rectifiers["parallel"],
            substitute_adjacency=run.substitute,
            private_adjacency=run.graph.adjacency,
        )
        embeddings = run.backbone_embeddings()
        labels, profile = session.predict_microbatch_precomputed(
            embeddings, [[0, 1], [1], [5, 0]]
        )
        assert labels.dtype == np.int64
        assert labels.shape == (5,)  # concatenated per-request, dupes kept
        assert profile.payload_bytes > 0

    def test_pipelined_enclave_spans_stay_aggregate_only(self, pipelined):
        import numbers

        from repro.obs.vocabulary import forbidden_words_in

        telemetry, _, _ = pipelined
        spans = [
            s for root in telemetry.tracer.roots()
            for s in TestTelemetryRedaction._enclave_spans(root)
        ]
        assert spans, "pipelined workload produced no enclave spans"
        for span in spans:
            for key, value in span.attributes.items():
                assert not forbidden_words_in(key), key
                assert isinstance(value, numbers.Number), (key, value)


class TestProfilingBoundary:
    """Continuous profiling must not widen the enclave boundary.

    Per-batch cost attribution joins the enclave's transition counter
    with the cost-model profile — both already gate-approved aggregates.
    The timeline's *other* fields (batch composition, queue timestamps)
    are untrusted-side observations the scheduler makes about its own
    behaviour, so the closed schema applies to the enclave-origin
    ``cost`` records: aggregate-suffixed keys, scalar values, none of
    the per-entity vocabulary.
    """

    @pytest.fixture
    def profiled(self, trained_vault):
        import threading

        from repro.deploy import (
            BatchPolicy, MicroBatchScheduler, VaultServer, zipf_workload,
        )
        from repro.obs import PipelineProfiler

        run = trained_vault
        session = SecureInferenceSession(
            backbone=run.backbone,
            rectifier=run.rectifiers["series"],
            substitute_adjacency=run.substitute,
            private_adjacency=run.graph.adjacency,
        )
        server = VaultServer(session, run.graph.features)
        workload = zipf_workload(run.graph.num_nodes, 48, alpha=1.3, seed=9)
        profiler = PipelineProfiler()
        policy = BatchPolicy(max_batch_size=8, max_wait_ms=2.0)
        with MicroBatchScheduler(server, policy, profiler=profiler) as sched:
            threads = [
                threading.Thread(
                    target=lambda shard=workload[i::4], c=f"client_{i}": [
                        sched.query(int(n), client=c) for n in shard
                    ]
                )
                for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        return profiler

    def test_every_cost_record_satisfies_the_gate_schema(self, profiled):
        from repro.obs.redaction import check_aggregate_key, check_scalar

        timelines = profiled.timelines()
        assert timelines, "profiled run recorded no batches"
        for timeline in timelines:
            assert timeline.cost, "batch carries no cost attribution"
            for key, value in timeline.cost.items():
                check_aggregate_key(key)  # raises TelemetryLeak on leak
                check_scalar(key, value)

    @pytest.mark.parametrize("poisoned", [
        {"node_count": 3},                      # per-entity vocabulary
        {"queried_ids_total": 7},               # id smuggling
        {"latency": 0.5},                       # no aggregate suffix
        {"payload_bytes": [1, 2, 3]},           # non-scalar payload
        {"transfer_seconds": "0,1,4,9"},        # string side channel
    ])
    def test_poisoned_cost_records_are_rejected(self, poisoned):
        from repro.obs.profiling import validate_cost_record
        from repro.obs.redaction import TelemetryLeak

        with pytest.raises(TelemetryLeak):
            validate_cost_record(poisoned)

    def test_timeline_export_cost_sections_stay_clean(self, profiled):
        import json

        from repro.obs.profiling import timelines_to_json
        from repro.obs.vocabulary import AGGREGATE_SUFFIXES, forbidden_words_in

        doc = json.loads(timelines_to_json(profiled.timelines()))
        cost_dicts = [b["cost"] for b in doc["batches"]]
        cost_dicts.append(doc["summary"]["cost_totals"])
        assert all(cost_dicts)
        for cost in cost_dicts:
            for key, value in cost.items():
                assert not forbidden_words_in(key), key
                assert key.endswith(AGGREGATE_SUFFIXES), key
                assert isinstance(value, (int, float)), (key, value)


class TestResilienceBoundary:
    """Crashes, retries, and recovery must not widen the egress contract.

    The fault-injection harness simulates availability events only; every
    path it exercises — a faulted ECALL, a retried batch, a restarted
    enclave, a degraded backbone-only answer — has to leave the label-only
    one-way channel rules exactly as strict as the fault-free path.
    """

    def _faulted_session(self, trained_vault, *specs):
        from repro.tee import FaultInjector, FaultPlan

        run = trained_vault
        session = SecureInferenceSession(
            backbone=run.backbone,
            rectifier=run.rectifiers["series"],
            substitute_adjacency=run.substitute,
            private_adjacency=run.graph.adjacency,
        )
        session.attach_fault_injector(FaultInjector(FaultPlan(tuple(specs))))
        return session

    @pytest.mark.parametrize("kind", ["memory", "kill", "corrupt"])
    def test_faulted_ecall_publishes_nothing(self, trained_vault, kind):
        """An ECALL that dies mid-flight must leave the outbox empty: a
        partial result crossing the channel would be a leak, so collect()
        on the untrusted side raises instead of returning stale data."""
        from repro.tee import FaultInjector, FaultPlan
        from repro.tee.faults import FaultSpec

        run = trained_vault
        session = self._faulted_session(trained_vault, FaultSpec(kind, 0))
        enclave = session.enclave
        channel = session._fresh_channel()
        embeddings, _ = session.embed(run.graph.features)
        for block in embeddings:
            channel.push(block)
        with pytest.raises(Exception):
            enclave.ecall_infer(channel)
        with pytest.raises(SecurityViolation):
            channel.collect()

    def test_restarted_enclave_keeps_label_only_egress(self, trained_vault):
        """A recovered enclave re-earns trust via attestation and then obeys
        the same publish() type-check as the original instance."""
        run = trained_vault
        session = SecureInferenceSession(
            backbone=run.backbone,
            rectifier=run.rectifiers["series"],
            substitute_adjacency=run.substitute,
            private_adjacency=run.graph.adjacency,
        )
        blob = session.enclave.seal_snapshot()
        session.enclave.kill()
        session.rebuild_enclave(blob)
        channel = OneWayChannel()
        with pytest.raises(SecurityViolation):
            channel.publish(np.zeros(3))  # floats still cannot leave
        labels, _ = session.predict_nodes(run.graph.features, [5])
        assert np.issubdtype(labels.dtype, np.integer)

    def test_retried_batch_crosses_as_ordinary_push(self, trained_vault):
        """Retry after a memory fault re-stages through a fresh channel —
        the adversary sees another logged push, never a widened interface."""
        from repro.deploy import EnclaveSupervisor, VaultServer
        from repro.tee.faults import FaultSpec

        run = trained_vault
        session = self._faulted_session(trained_vault, FaultSpec("memory", 0))
        server = VaultServer(session, run.graph.features)
        server.attach_supervisor(EnclaveSupervisor(session))
        labels = server.query_batch([8], client="retry")
        assert np.issubdtype(labels.dtype, np.integer)

    def test_degraded_answers_never_touch_the_channel(self, trained_vault):
        """Backbone-only fallback is computed wholly in the untrusted world:
        the dead enclave's transition counter must not move, and the answer
        is still integer labels (no logits escape via the fallback)."""
        run = trained_vault
        session = SecureInferenceSession(
            backbone=run.backbone,
            rectifier=run.rectifiers["series"],
            substitute_adjacency=run.substitute,
            private_adjacency=run.graph.adjacency,
        )
        session.enclave.kill()
        transitions = session.enclave.ecall_transitions
        embeddings, _ = session.embed(run.graph.features)
        labels = session.backbone_labels(embeddings, [0, 7, 11])
        assert session.enclave.ecall_transitions == transitions
        assert np.issubdtype(labels.dtype, np.integer)

    def test_injector_cannot_widen_egress(self, trained_vault):
        """Corruption happens on the *untrusted* staging side; with an
        injector attached the enclave-side publish gate is unchanged."""
        from repro.tee import FaultInjector, FaultPlan

        session = self._faulted_session(trained_vault)  # empty plan
        channel = session._fresh_channel()
        with pytest.raises(SecurityViolation):
            channel.publish((np.zeros(2), np.ones(2)))
        with pytest.raises(SecurityViolation):
            LabelOnlyResult(np.zeros(3))  # float labels rejected at the type


class TestTenancyBoundary:
    """Tenant attribution must not widen the enclave egress contract.

    Tenant-labelled series cross the gate, so the label value grammar
    applies: only the hashed lowercase token (or the overflow spelling)
    is admissible — a raw client identifier, which typically carries
    digits or underscores, is rejected at the gate, and the ``tenant``
    label key itself had to be allow-listed.
    """

    def test_gate_admits_hashed_tenant_label(self):
        from repro.obs import Telemetry, hash_tenant

        telemetry = Telemetry()
        gate = telemetry.enclave_gate()
        gate.inc(
            "enclave_tenant_compute_seconds_total", 0.5,
            tenant=hash_tenant("client_7"),
        )
        counter = telemetry.registry.get(
            "enclave_tenant_compute_seconds_total"
        )
        assert counter.value(tenant=hash_tenant("client_7")) == 0.5

    @pytest.mark.parametrize("raw", [
        "client_7",        # underscore + digit
        "alice42",         # digit
        "Bob",             # uppercase
        "node-17",         # id-shaped
    ])
    def test_gate_rejects_raw_client_labels(self, raw):
        from repro.errors import SecurityViolation
        from repro.obs import Telemetry

        gate = Telemetry().enclave_gate()
        with pytest.raises(SecurityViolation):
            gate.inc("enclave_tenant_compute_seconds_total", 1.0,
                     tenant=raw)

    def test_gate_rejects_unknown_label_keys(self):
        from repro.errors import SecurityViolation
        from repro.obs import Telemetry, hash_tenant

        gate = Telemetry().enclave_gate()
        with pytest.raises(SecurityViolation):
            gate.inc("enclave_tenant_compute_seconds_total", 1.0,
                     client=hash_tenant("a"))

    def test_ledger_gate_emissions_survive_prometheus_round_trip(self):
        from repro.obs import (
            Telemetry, TenantCostLedger, parse_prometheus_samples,
            render_prometheus,
        )

        telemetry = Telemetry()
        ledger = TenantCostLedger(gate=telemetry.enclave_gate())
        ledger.record_batch(
            [("alice", [1, 2]), ("bob", [2, 3])],
            {"ecall_count": 1.0, "transfer_seconds": 1e-3,
             "compute_seconds": 4e-3, "paging_seconds": 5e-4,
             "paging_pages": 2.0, "payload_bytes": 4096.0},
        )
        samples = parse_prometheus_samples(
            render_prometheus(telemetry.registry)
        )
        tenant_series = samples["enclave_tenant_compute_seconds_total"]
        assert len(tenant_series) == 2
        for label_set in tenant_series:
            labels = dict(label_set)
            assert set(labels) == {"tenant"}
            assert labels["tenant"].isalpha()
            assert labels["tenant"].islower()

    def test_structured_log_rejects_forbidden_field_vocabulary(self):
        # the closed log schema cannot be extended at emit time with a
        # per-entity field, even a numeric one
        from repro.obs import LogSchemaViolation, StructuredLogger, hash_tenant

        log = StructuredLogger()
        with pytest.raises(LogSchemaViolation):
            log.emit("ecall", batch_seq=1, queries_count=1,
                     unique_count=1, seconds=0.1, node_count=5)
