"""Security invariants: the threat-model guarantees GNNVault must uphold.

These are integration tests of the defence itself, phrased as adversarial
checks: what the untrusted world can see must not contain the private
assets, and the enclave boundary must only ever emit labels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import link_stealing_attack
from repro.deploy import SecureInferenceSession
from repro.errors import SecurityViolation
from repro.graph import edge_overlap, gcn_normalize
from repro.tee import LabelOnlyResult, OneWayChannel


@pytest.fixture
def session(trained_vault):
    run = trained_vault
    return SecureInferenceSession(
        backbone=run.backbone,
        rectifier=run.rectifiers["parallel"],
        substitute_adjacency=run.substitute,
        private_adjacency=run.graph.adjacency,
    )


class TestModelIpProtection:
    def test_untrusted_world_holds_only_backbone_weights(self, session, trained_vault):
        run = trained_vault
        view = session.adversary_view()
        exposed = set(view["backbone_state"])
        rectifier_params = set(run.rectifiers["parallel"].state_dict())
        # the name spaces could coincide; compare actual values
        for name in exposed & rectifier_params:
            assert not np.array_equal(
                view["backbone_state"][name],
                run.rectifiers["parallel"].state_dict()[name],
            )

    def test_backbone_is_the_inaccurate_model(self, trained_vault):
        """The accurate model (rectifier) must not be derivable from the
        untrusted world alone: the backbone alone scores worse."""
        run = trained_vault
        assert run.p_bb < run.p_rec["parallel"]


class TestEdgePrivacy:
    def test_substitute_graph_is_not_the_private_graph(self, trained_vault):
        run = trained_vault
        assert edge_overlap(run.substitute, run.graph.adjacency) < 0.6

    def test_exposed_embeddings_leak_no_more_than_features(self, trained_vault):
        """Table IV's qualitative claim at mini scale: attacking what
        GNNVault exposes is no better than attacking raw features."""
        run = trained_vault
        gv = link_stealing_attack(
            run.backbone_embeddings(), run.graph.adjacency, seed=0
        )
        base = link_stealing_attack(
            run.graph.features, run.graph.adjacency, seed=0
        )
        org = link_stealing_attack(
            run.original_embeddings(), run.graph.adjacency, seed=0
        )
        assert org.mean_auc() > gv.mean_auc()
        assert gv.mean_auc() <= base.mean_auc() + 0.1

    def test_private_adjacency_never_in_untrusted_view(self, session, trained_vault):
        view = session.adversary_view()
        observable = view["substitute_adjacency"]
        private = trained_vault.graph.adjacency
        assert observable.edge_set() != private.edge_set()


class TestOneWayFlow:
    def test_enclave_outputs_only_labels(self, session, trained_vault):
        labels, _ = session.predict(trained_vault.graph.features)
        assert labels.dtype.kind == "i"

    def test_channel_rejects_embedding_export(self):
        channel = OneWayChannel()
        with pytest.raises(SecurityViolation):
            channel.publish(np.random.default_rng(0).random((10, 8)))

    def test_channel_rejects_float_labels(self):
        channel = OneWayChannel()
        with pytest.raises(SecurityViolation):
            channel.publish(LabelOnlyResult(np.array([0.0, 1.0])))

    def test_rectifier_gradients_never_reach_backbone(self, trained_vault):
        """Training-time one-way flow (partition-before-training)."""
        from repro import nn

        run = trained_vault
        backbone = run.backbone
        backbone.unfreeze()
        backbone.zero_grad()
        outs = backbone.forward_with_intermediates(
            nn.Tensor(run.graph.features), gcn_normalize(run.substitute)
        )
        rect = run.rectifiers["parallel"]
        rect(outs, run.graph.normalized_adjacency()).sum().backward()
        assert all(p.grad is None for p in backbone.parameters())
        backbone.freeze()

    def test_transfer_log_is_the_only_observable_flow(self, session, trained_vault):
        """Everything that crossed into the enclave is in the audit log and
        consists of backbone embeddings only (no raw private data)."""
        run = trained_vault
        # fresh channel per predict; inspect through a manual run
        channel = OneWayChannel()
        embeddings = run.backbone_embeddings()
        for layer in run.rectifiers["parallel"].consumed_layers():
            channel.push(embeddings[layer], description=f"layer{layer}")
        descriptions = [r.description for r in channel.transfer_log]
        assert all(d.startswith("layer") for d in descriptions)


class TestLabelOnlyRationale:
    def test_logits_leak_more_than_labels(self, trained_vault):
        """Why the paper keeps logits inside: attacking rectifier logits
        succeeds better than attacking hard labels."""
        run = trained_vault
        rect = run.rectifiers["parallel"]
        outs = rect.forward_with_intermediates(
            run.backbone_embeddings(), run.graph.normalized_adjacency()
        )
        logits = outs[-1].data
        labels = logits.argmax(axis=1)
        one_hot = np.eye(logits.shape[1])[labels]
        logit_attack = link_stealing_attack(logits, run.graph.adjacency, seed=0)
        label_attack = link_stealing_attack(one_hot, run.graph.adjacency, seed=0)
        assert logit_attack.mean_auc() >= label_attack.mean_auc() - 0.02
