"""Calibration-checker tests: all six stand-ins satisfy the premises."""

from __future__ import annotations

import pytest

from repro.datasets import check_all, check_dataset, list_datasets


@pytest.fixture(scope="module")
def checks():
    return {check.dataset: check for check in check_all(seed=0)}


class TestAllDatasetsHealthy:
    def test_every_dataset_checked(self, checks):
        assert set(checks) == set(list_datasets())

    @pytest.mark.parametrize("name", [
        "cora", "citeseer", "pubmed", "computer", "photo", "corafull",
    ])
    def test_healthy(self, checks, name):
        check = checks[name]
        assert check.real_graph_informative, (
            f"{name}: homophily {check.real_homophily:.2f} far from "
            f"target {check.target_homophily:.2f}"
        )
        assert check.substitute_weaker_than_real, (
            f"{name}: substitute homophily {check.substitute_homophily:.2f} "
            f"dominates real {check.real_homophily:.2f}"
        )
        assert check.mixing_bounded, (
            f"{name}: mixing fraction {check.mixing_fraction:.3f} is in the "
            "over-smoothing regime"
        )
        assert check.healthy


class TestCheckMechanics:
    def test_chance_corrected_target(self, checks):
        """Pubmed (3 classes, h=0.5) → corrected target 0.5 + 0.5/3."""
        assert checks["pubmed"].target_homophily == pytest.approx(
            0.5 + 0.5 / 3.0
        )

    def test_corafull_substitute_markedly_weaker(self, checks):
        """The recalibrated CoraFull must keep its substitute weak
        (the original calibration bug this module guards against)."""
        check = checks["corafull"]
        assert check.substitute_homophily < check.real_homophily

    def test_single_dataset_check(self):
        check = check_dataset("cora", seed=1)
        assert check.dataset == "cora"
        assert 0.0 <= check.real_homophily <= 1.0

    def test_deterministic(self):
        a = check_dataset("citeseer", seed=2)
        b = check_dataset("citeseer", seed=2)
        assert a == b
