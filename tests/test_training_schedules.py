"""Learning-rate schedule tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.training import (
    ConstantLr,
    CosineDecay,
    StepDecay,
    TrainConfig,
    WarmupWrapper,
    make_schedule,
)


class TestConstant:
    def test_flat(self):
        schedule = ConstantLr(0.01)
        assert schedule.lr_at(0) == schedule.lr_at(500) == 0.01

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            ConstantLr(0.0)


class TestStepDecay:
    def test_halves_every_step(self):
        schedule = StepDecay(0.1, step_size=10, gamma=0.5)
        assert schedule.lr_at(0) == 0.1
        assert schedule.lr_at(9) == 0.1
        assert schedule.lr_at(10) == pytest.approx(0.05)
        assert schedule.lr_at(25) == pytest.approx(0.025)

    def test_validation(self):
        with pytest.raises(ValueError):
            StepDecay(0.1, step_size=0)
        with pytest.raises(ValueError):
            StepDecay(0.1, step_size=5, gamma=1.5)


class TestCosineDecay:
    def test_endpoints(self):
        schedule = CosineDecay(0.1, total_epochs=100, min_lr=0.01)
        assert schedule.lr_at(0) == pytest.approx(0.1)
        assert schedule.lr_at(100) == pytest.approx(0.01)

    def test_monotone_decreasing(self):
        schedule = CosineDecay(0.1, total_epochs=50)
        rates = [schedule.lr_at(e) for e in range(51)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_clamps_past_horizon(self):
        schedule = CosineDecay(0.1, total_epochs=10, min_lr=0.02)
        assert schedule.lr_at(1000) == pytest.approx(0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            CosineDecay(0.1, total_epochs=0)
        with pytest.raises(ValueError):
            CosineDecay(0.1, total_epochs=10, min_lr=0.5)


class TestWarmup:
    def test_linear_ramp(self):
        schedule = WarmupWrapper(ConstantLr(0.1), warmup_epochs=5)
        assert schedule.lr_at(0) == pytest.approx(0.02)
        assert schedule.lr_at(4) == pytest.approx(0.1)
        assert schedule.lr_at(10) == pytest.approx(0.1)

    def test_zero_warmup_passthrough(self):
        schedule = WarmupWrapper(ConstantLr(0.1), warmup_epochs=0)
        assert schedule.lr_at(0) == 0.1


class TestFactoryAndIntegration:
    def test_factory_kinds(self):
        assert isinstance(make_schedule("constant", 0.1, 10), ConstantLr)
        assert isinstance(make_schedule("step", 0.1, 30), StepDecay)
        assert isinstance(make_schedule("cosine", 0.1, 30), CosineDecay)
        assert isinstance(
            make_schedule("cosine", 0.1, 30, warmup_epochs=3), WarmupWrapper
        )

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_schedule("exponential", 0.1, 10)

    def test_apply_sets_optimizer_lr(self):
        p = nn.Parameter(np.zeros(1))
        optimizer = nn.Adam([p], lr=0.1)
        schedule = StepDecay(0.1, step_size=1, gamma=0.5)
        schedule.apply(optimizer, 2)
        assert optimizer.lr == pytest.approx(0.025)

    def test_train_config_builds_schedule(self):
        config = TrainConfig(epochs=40, schedule="cosine", warmup_epochs=4)
        schedule = config.make_schedule()
        assert schedule.lr_at(0) < schedule.lr_at(3)  # warming up

    def test_scheduled_training_converges(self, tiny_graph, tiny_split):
        from repro.graph import gcn_normalize
        from repro.models import GCNBackbone
        from repro.training import train_node_classifier

        adj = gcn_normalize(tiny_graph.adjacency)
        model = GCNBackbone(tiny_graph.num_features, (16, 3), seed=0)
        result = train_node_classifier(
            model, tiny_graph.features, adj, tiny_graph.labels, tiny_split,
            TrainConfig(epochs=60, patience=60, schedule="cosine", warmup_epochs=5),
        )
        assert result.test_accuracy > 0.6
