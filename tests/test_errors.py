"""Exception-hierarchy tests: catchability contracts the API relies on."""

from __future__ import annotations

import pytest

from repro.errors import (
    AttestationError,
    EnclaveMemoryError,
    ReproError,
    SealingError,
    SecurityViolation,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "error",
        [SecurityViolation, EnclaveMemoryError, AttestationError, SealingError],
    )
    def test_all_derive_from_repro_error(self, error):
        assert issubclass(error, ReproError)
        with pytest.raises(ReproError):
            raise error("boom")

    def test_query_budget_is_security_violation(self):
        from repro.deploy import QueryBudgetExceeded

        assert issubclass(QueryBudgetExceeded, SecurityViolation)

    def test_catch_all_deployment_failures_with_one_except(self):
        """Library contract: a caller can wrap any vault operation in a
        single `except ReproError`."""
        from repro.tee import SealedBlob, unseal

        blob = SealedBlob("m", b"0" * 16, b"junk", b"0" * 32)
        with pytest.raises(ReproError):
            unseal(blob, "m")
