#!/usr/bin/env python
"""The paper's motivating scenario (Fig. 1): a recommender system vault.

Alice (the vendor) trains a product-graph GNN where node features are
public product attributes and edges are the *private* co-purchase
relationships mined from user behaviour. She deploys it on Bob's device.

Without GNNVault, Bob reads the model weights and steals the edges via a
link stealing attack. With GNNVault, Bob only ever sees the public
backbone and the substitute graph — and the attack collapses to the
feature-similarity baseline.

Run:  python examples/recommender_vault.py
"""

from repro.attacks import link_stealing_attack
from repro.deploy import SecureInferenceSession, plan_deployment
from repro.experiments import run_gnnvault
from repro.graph import edge_overlap
from repro.training import accuracy


def main() -> None:
    # The Amazon co-purchase graphs are the paper's recommender-style
    # datasets: "photo" here (7,650 products at full scale).
    print("=== Alice: builds the product graph and trains GNNVault ===")
    run = run_gnnvault(
        dataset="photo",
        schemes=("series",),
        substitute_kind="knn",
        knn_k=2,
        seed=1,
    )
    graph = run.graph
    print(graph.summary())
    print(f"private co-purchase edges: {graph.num_edges}")
    print(f"public substitute edges:   {run.substitute.num_edges}")
    print(
        "substitute/private edge overlap (Jaccard): "
        f"{edge_overlap(run.substitute, graph.adjacency):.3f}"
    )

    print()
    print("=== Alice: provisions the vault onto Bob's device ===")
    session = SecureInferenceSession(
        backbone=run.backbone,
        rectifier=run.rectifiers["series"],
        substitute_adjacency=run.substitute,
        private_adjacency=graph.adjacency,
    )
    plan = plan_deployment(
        run.backbone, run.rectifiers["series"], run.substitute, graph.adjacency
    )
    budget = plan.enclave_budget
    print(f"enclave working set: {budget.total_mb:.2f} MB "
          f"(fits 96 MB EPC: {budget.fits_epc()})")
    print(f"IP split: {plan.trusted_parameter_count:,} protected params vs "
          f"{plan.untrusted_parameter_count:,} public params "
          f"(ratio {plan.parameter_ratio:.3f})")

    print()
    print("=== Bob: queries recommendations (label-only output) ===")
    labels, profile = session.predict(graph.features)
    test_acc = accuracy(labels, graph.labels, run.split.test)
    print(f"classification accuracy through the vault: {100 * test_acc:.1f}% "
          f"(backbone alone: {100 * run.p_bb:.1f}%)")
    print(f"inference profile: backbone {1e3 * profile.backbone_seconds:.2f} ms, "
          f"transfer {1e3 * profile.transfer_seconds:.3f} ms, "
          f"enclave {1e3 * profile.enclave_seconds:.2f} ms")

    print()
    print("=== Bob: attempts a link stealing attack ===")
    unprotected = link_stealing_attack(
        run.original_embeddings(), graph.adjacency, victim="unprotected GNN",
        num_pairs=2000, seed=0,
    )
    vaulted = link_stealing_attack(
        run.backbone_embeddings(), graph.adjacency, victim="GNNVault surface",
        num_pairs=2000, seed=0,
    )
    baseline = link_stealing_attack(
        graph.features, graph.adjacency, victim="raw features",
        num_pairs=2000, seed=0,
    )
    print(f"{'victim':>20}  mean AUC   best metric")
    for result in (unprotected, vaulted, baseline):
        metric, auc = result.best_metric()
        print(f"{result.victim:>20}  {result.mean_auc():.3f}      {metric} ({auc:.3f})")
    print()
    print("GNNVault reduces Bob's attack to what public features already")
    print("reveal — the private co-purchase edges stay in the vault.")


if __name__ == "__main__":
    main()
