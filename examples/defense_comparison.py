#!/usr/bin/env python
"""Why a TEE instead of noise? The privacy/utility comparison.

The paper's introduction argues software-only defenses are "passive,
inaccurate, or computation-expensive". This example makes the claim
quantitative: perturbing an unprotected GNN's exposed embeddings moves
along a privacy/utility trade-off curve, while GNNVault sits off the
curve — baseline-level attack AUC at (near-)original accuracy.

Run:  python examples/defense_comparison.py
"""

from repro.analysis import render_table
from repro.attacks import link_stealing_attack
from repro.defense import GaussianNoiseDefense, TopKLogitDefense, tradeoff_curve
from repro.experiments import run_gnnvault


def main() -> None:
    print("Training the victim (unprotected GNN) and GNNVault on Cora...")
    run = run_gnnvault(dataset="cora", schemes=("parallel",), seed=0)
    graph = run.graph
    exposed = run.original_embeddings()

    defenses = [
        GaussianNoiseDefense(scale=0.0, seed=1),
        GaussianNoiseDefense(scale=0.5, seed=1),
        GaussianNoiseDefense(scale=1.5, seed=1),
        GaussianNoiseDefense(scale=4.0, seed=1),
        TopKLogitDefense(k=1),
    ]
    curve = tradeoff_curve(
        defenses, exposed, graph.adjacency, graph.labels, run.split.test,
        num_pairs=1500, seed=0,
    )
    vault_attack = link_stealing_attack(
        run.backbone_embeddings(), graph.adjacency, victim="gnnvault",
        num_pairs=1500, seed=0,
    )

    rows = [
        [point.defense, round(point.attack_auc, 3), round(100 * point.accuracy, 1)]
        for point in curve
    ]
    rows.append(
        [
            "GNNVault (TEE)",
            round(vault_attack.mean_auc(), 3),
            round(100 * run.p_rec["parallel"], 1),
        ]
    )
    print()
    print(
        render_table(
            ["defense", "link-stealing AUC", "accuracy (%)"],
            rows,
            title="Perturbation defenses vs GNNVault (lower AUC + higher acc = better)",
        )
    )
    print()
    print("Noise strong enough to blind the attacker destroys the model;")
    print("the enclave gets both properties at once, paying only latency.")


if __name__ == "__main__":
    main()
