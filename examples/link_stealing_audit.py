#!/usr/bin/env python
"""Security audit: Table IV's link stealing evaluation as a reusable tool.

Audits three victim surfaces on two citation graphs with all six
similarity metrics and prints a Table-IV-style report, flagging any
configuration where GNNVault leaks meaningfully more than the
feature-only baseline.

Run:  python examples/link_stealing_audit.py
"""

from repro.analysis import render_table
from repro.attacks import PAPER_METRICS
from repro.experiments import run_table4

LEAK_TOLERANCE = 0.10  # max acceptable AUC gap over the baseline


def main() -> None:
    print("Running the three-victim link stealing audit (cora, citeseer)...")
    rows = run_table4(datasets=("cora", "citeseer"), num_pairs=2000, seed=0)

    body = []
    violations = []
    for row in rows:
        for metric in PAPER_METRICS:
            gap = row.m_gv[metric] - row.m_base[metric]
            flag = "LEAK?" if gap > LEAK_TOLERANCE else "ok"
            if gap > LEAK_TOLERANCE:
                violations.append((row.dataset, metric, gap))
            body.append(
                [
                    row.dataset,
                    metric,
                    round(row.m_org[metric], 3),
                    round(row.m_gv[metric], 3),
                    round(row.m_base[metric], 3),
                    flag,
                ]
            )
    print()
    print(
        render_table(
            ["dataset", "metric", "M_org", "M_gv", "M_base", "verdict"],
            body,
            title="Link stealing audit (AUC; M_gv should track M_base)",
        )
    )
    print()
    if violations:
        print(f"{len(violations)} configuration(s) exceeded the leak tolerance:")
        for dataset, metric, gap in violations:
            print(f"  {dataset}/{metric}: +{gap:.3f} AUC over baseline")
    else:
        print("All configurations within tolerance: GNNVault's observable")
        print("surface leaks no more than public features already do.")


if __name__ == "__main__":
    main()
