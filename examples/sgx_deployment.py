#!/usr/bin/env python
"""The full SGX deployment ceremony, step by step.

Shows the machinery a real GNNVault rollout needs — and that the paper's
C++/SGX implementation performs implicitly:

1. the device enclave produces an attestation quote,
2. the vendor verifies the quote against the expected measurement,
3. rectifier weights and the private COO adjacency are sealed to the
   enclave identity and shipped,
4. the enclave unseals them internally; tampered or mis-targeted blobs
   are rejected,
5. inference ECALLs cross the one-way channel and return label-only
   results with a cost breakdown (Fig. 6's accounting, per scheme).

Run:  python examples/sgx_deployment.py
"""

import numpy as np

from repro.errors import SealingError, SecurityViolation
from repro.experiments import run_gnnvault
from repro.tee import (
    EnclaveConfig,
    OneWayChannel,
    RectifierEnclave,
    seal,
    seal_private_graph,
    seal_rectifier_weights,
    verify_quote,
)


def main() -> None:
    print("Training a GNNVault instance on synthetic Citeseer...")
    run = run_gnnvault(dataset="citeseer", schemes=("parallel", "series", "cascaded"), seed=2)
    graph = run.graph
    embeddings = run.backbone_embeddings()

    for scheme, rectifier in run.rectifiers.items():
        print()
        print(f"=== Deploying the {scheme} rectifier ===")
        enclave = RectifierEnclave(rectifier, EnclaveConfig())

        # -- 1-2: remote attestation --------------------------------------
        quote = enclave.attest(challenge="vendor-nonce-42")
        verify_quote(quote, enclave.measurement, "vendor-nonce-42")
        print(f"attestation OK (measurement {enclave.measurement[:16]}...)")

        # -- 3-4: sealed provisioning --------------------------------------
        enclave.provision_weights(seal_rectifier_weights(rectifier))
        enclave.provision_graph(seal_private_graph(graph.adjacency, rectifier))
        print("sealed weights + private graph provisioned")

        # a blob sealed for a different enclave must be rejected
        try:
            enclave.provision_weights(seal({"bogus": 1}, "another-enclave"))
        except SealingError:
            print("mis-targeted sealed blob rejected (as required)")

        # -- 5: inference ECALL --------------------------------------------
        channel = OneWayChannel()
        for layer in rectifier.consumed_layers():
            channel.push(embeddings[layer], description=f"backbone layer {layer}")
        report = enclave.ecall_infer(channel)
        labels = channel.collect().labels
        print(f"label-only output: {labels[:10]}... (dtype {labels.dtype})")
        print(
            f"cost: transfer {1e3 * report.transfer_seconds:.3f} ms over "
            f"{report.payload_bytes / 1024:.0f} KiB, "
            f"enclave compute {1e3 * report.compute_seconds:.2f} ms, "
            f"peak memory {report.peak_memory_bytes / 2**20:.2f} MB, "
            f"{report.swapped_pages} EPC pages swapped"
        )

        # the enclave cannot be talked into exporting embeddings
        try:
            channel.publish(np.zeros((4, 4)))
        except SecurityViolation:
            print("attempted embedding export blocked by the one-way channel")


if __name__ == "__main__":
    main()
