#!/usr/bin/env python
"""Quickstart: train and evaluate GNNVault on (synthetic) Cora.

Walks the paper's four steps on one dataset:

1. build a KNN substitute graph from public node features,
2. train the public GCN backbone on the substitute graph,
3. freeze the backbone and train a parallel rectifier on the real edges,
4. compare the three accuracies the paper reports: p_org / p_bb / p_rec.

Run:  python examples/quickstart.py
"""

from repro.experiments import run_gnnvault


def main() -> None:
    print("Training GNNVault on synthetic Cora (this takes a few seconds)...")
    run = run_gnnvault(
        dataset="cora",
        schemes=("parallel", "series", "cascaded"),
        substitute_kind="knn",
        knn_k=2,
        seed=0,
    )

    print()
    print(run.graph.summary())
    print(f"substitute graph: {run.substitute.num_edges} edges (KNN, k=2)")
    print()
    print(f"original GNN accuracy        p_org = {100 * run.p_org:5.1f}%")
    print(f"public backbone accuracy     p_bb  = {100 * run.p_bb:5.1f}%")
    for scheme in ("parallel", "series", "cascaded"):
        p_rec = 100 * run.p_rec[scheme]
        delta = 100 * run.protection(scheme)
        theta = run.theta_rec(scheme)
        print(
            f"{scheme:>8} rectifier accuracy p_rec = {p_rec:5.1f}%  "
            f"(protection dp = +{delta:.1f} pts, enclave params = {theta:,})"
        )
    print()
    best = max(run.p_rec, key=run.p_rec.get)
    print(
        f"Accuracy degradation vs the unprotected model: "
        f"{100 * run.degradation(best):.1f} points ({best} rectifier) — "
        "the paper reports < 2 points at full scale."
    )


if __name__ == "__main__":
    main()
