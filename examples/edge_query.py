#!/usr/bin/env python
"""Per-query inference on the edge device.

A deployed recommender doesn't classify the whole graph per request — it
answers queries about individual nodes. This example shows GNNVault's
per-node path: the backbone still embeds every node (the untrusted world
must not learn which neighbourhood the enclave reads — that would itself
leak edges), but inside the enclave only the targets' k-hop receptive
field over the private graph is rectified, with global-degree
normalisation keeping the answers bit-identical to a full-graph pass.

Run:  python examples/edge_query.py
"""

import numpy as np

from repro.deploy import SecureInferenceSession
from repro.experiments import run_gnnvault


def main() -> None:
    print("Training GNNVault on synthetic Citeseer...")
    run = run_gnnvault(dataset="citeseer", schemes=("parallel",), seed=3)
    session = SecureInferenceSession(
        backbone=run.backbone,
        rectifier=run.rectifiers["parallel"],
        substitute_adjacency=run.substitute,
        private_adjacency=run.graph.adjacency,
    )

    print()
    print("=== Full-graph inference (baseline) ===")
    full_labels, full_profile = session.predict(run.graph.features)
    print(f"classified {full_labels.size} nodes; "
          f"enclave peak memory {full_profile.peak_enclave_memory_mb:.2f} MB, "
          f"enclave time {1e3 * full_profile.enclave_seconds:.2f} ms")

    print()
    print("=== Per-node queries ===")
    rng = np.random.default_rng(0)
    targets = rng.choice(run.graph.num_nodes, size=2, replace=False).tolist()
    labels, profile = session.predict_nodes(run.graph.features, targets)
    for node, label in zip(targets, labels):
        match = "==" if label == full_labels[node] else "!="
        print(f"  node {node:4d} -> class {label}  ({match} full-graph answer)")
    assert np.array_equal(labels, full_labels[targets]), "per-node must be exact"

    print()
    print(f"enclave peak memory: {profile.peak_enclave_memory_mb:.3f} MB "
          f"(vs {full_profile.peak_enclave_memory_mb:.2f} MB full-graph)")
    print(f"enclave compute:     {1e3 * profile.enclave_seconds:.3f} ms "
          f"(vs {1e3 * full_profile.enclave_seconds:.2f} ms full-graph)")
    print(f"bytes into enclave:  {profile.payload_bytes / 1024:.0f} KiB "
          f"(vs {full_profile.payload_bytes / 1024:.0f} KiB full-graph)")
    print()
    print("The trusted working set scales with the queried neighbourhood,")
    print("not the graph — and the private edges never leave the enclave.")


if __name__ == "__main__":
    main()
